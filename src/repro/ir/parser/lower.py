"""Lowering: mini-Fortran AST -> the analysis IR.

Converts declarations to parameters/arrays (with the power-of-two facts
registered on the program context), expressions to canonical
:mod:`repro.symbolic` expressions, loops to normalized :class:`LoopNode`
trees (via the builder's normalization) and assignments to write/read
references — reads are harvested from every :class:`ArrayRef` occurring
in the right-hand side, including inside opaque calls.
"""

from __future__ import annotations

from typing import Dict

from ...symbolic import Expr, as_expr, pow2, sym
from ..builder import PhaseBuilder, ProgramBuilder
from ..core import Program
from .ast_nodes import (
    ArrayRef,
    Assign,
    AstExpr,
    BinOp,
    Call,
    CallStmt,
    Comparison,
    DoLoop,
    IfGuard,
    Name,
    NumberLit,
    PhaseDef,
    ProgramDef,
    SubroutineDef,
    UnaryOp,
)
from .parser import ParseError, parse_program

__all__ = ["LoweringError", "lower_program", "parse_and_lower"]


class LoweringError(ValueError):
    """Semantic failure while lowering the AST."""


def _collect_reads(expr: AstExpr, out: list) -> None:
    if isinstance(expr, ArrayRef):
        out.append(expr)
        for sub in expr.subscripts:
            _collect_reads(sub, out)
    elif isinstance(expr, BinOp):
        _collect_reads(expr.left, out)
        _collect_reads(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _collect_reads(expr.operand, out)
    elif isinstance(expr, Call):
        for a in expr.args:
            _collect_reads(a, out)


class _Lowerer:
    def __init__(self, ast: ProgramDef):
        self.ast = ast
        self.builder = ProgramBuilder(ast.name)
        self.env: Dict[str, Expr] = {}
        self.arrays: Dict[str, object] = {}
        self.subroutines: Dict[str, SubroutineDef] = {
            sub.name: sub for sub in ast.subroutines
        }
        self._inline_depth = 0
        self._call_counter = 0
        self._suffix = ""

    def lower_expr(self, expr: AstExpr) -> Expr:
        if isinstance(expr, NumberLit):
            return as_expr(expr.value)
        if isinstance(expr, Name):
            return self.env.get(expr.ident, sym(expr.ident))
        if isinstance(expr, UnaryOp):
            return -self.lower_expr(expr.operand)
        if isinstance(expr, BinOp):
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                try:
                    return left / right
                except ZeroDivisionError:
                    raise LoweringError(
                        f"line {expr.line}: division by zero in constant "
                        f"expression"
                    ) from None
            if expr.op == "**":
                if left == as_expr(2):
                    return pow2(right)
                try:
                    return left ** right.as_int()
                except ValueError:
                    raise LoweringError(
                        f"line {expr.line}: only integer exponents or "
                        f"base-2 powers are supported, got "
                        f"{left}**{right}"
                    ) from None
            raise LoweringError(f"unknown operator {expr.op!r}")
        if isinstance(expr, Call):
            raise LoweringError(
                f"line {expr.line}: call {expr.func!r} cannot appear inside "
                "a subscript or bound expression"
            )
        if isinstance(expr, ArrayRef):
            raise LoweringError(
                f"line {expr.line}: array reference {expr.array!r} cannot "
                "appear inside a subscript or bound expression"
            )
        if isinstance(expr, Comparison):
            raise LoweringError(
                f"line {expr.line}: comparisons are only valid as IF-guard "
                "conditions"
            )
        raise LoweringError(f"unsupported expression node {expr!r}")

    def _array(self, name: str, line: int):
        """The IR array bound to ``name``, or a positioned error.

        The parser guarantees every program-level array is declared; the
        remaining hole is a subroutine dummy used in array position when
        the call site bound it to a scalar expression.
        """
        try:
            return self.arrays[name]
        except KeyError:
            raise LoweringError(
                f"line {line}: {name!r} is referenced as an array but is "
                "not bound to one here (was a scalar passed for an array "
                "dummy argument?)"
            ) from None

    def lower_decls(self) -> None:
        for p in self.ast.params:
            if p.pow2_exponent is not None:
                value, _ = self.builder.pow2_param(p.name, p.pow2_exponent)
            else:
                value = self.builder.param(p.name)
            self.env[p.name] = value
        for a in self.ast.arrays:
            extents = [self.lower_expr(e) for e in a.extents]
            self.arrays[a.name] = self.builder.array(a.name, *extents)

    def lower_assign(self, ph: PhaseBuilder, stmt: Assign) -> None:
        reads: list = []
        _collect_reads(stmt.rhs, reads)
        # subscripts of the *target* may also read arrays
        for sub in stmt.target.subscripts:
            _collect_reads(sub, reads)
        for ref in reads:
            ph.read(
                self._array(ref.array, ref.line),
                *[self.lower_expr(s) for s in ref.subscripts],
            )
        ph.write(
            self._array(stmt.target.array, stmt.target.line),
            *[self.lower_expr(s) for s in stmt.target.subscripts],
        )

    def lower_if(self, ph: PhaseBuilder, stmt: IfGuard) -> None:
        """Lower an IF guard by conservative erasure.

        The descriptor algebra carries no predicates, so the guard is
        summarized the way the paper's LMAD framework over-approximates
        data-dependent control flow: the guarded body contributes its
        references unconditionally, and array references in the
        condition itself count as reads.  Every consumer downstream —
        the analysis, the interpreter and therefore each differential
        oracle — sees the same erased IR, so the pipeline stays
        internally consistent.
        """
        reads: list = []
        _collect_reads(stmt.cond.left, reads)
        _collect_reads(stmt.cond.right, reads)
        for ref in reads:
            ph.read(
                self._array(ref.array, ref.line),
                *[self.lower_expr(s) for s in ref.subscripts],
            )
        for inner in stmt.body:
            if isinstance(inner, DoLoop):
                self.lower_loop(ph, inner)
            elif isinstance(inner, IfGuard):
                self.lower_if(ph, inner)
            elif isinstance(inner, CallStmt):
                self.lower_call(ph, inner)
            else:
                self.lower_assign(ph, inner)

    def lower_loop(self, ph: PhaseBuilder, loop: DoLoop) -> None:
        step = 1
        if loop.step is not None:
            step_expr = self.lower_expr(loop.step)
            try:
                step = step_expr.as_int()
            except ValueError:
                raise LoweringError(
                    f"line {loop.line}: loop step must be a constant integer"
                ) from None
            if step == 0:
                raise LoweringError(
                    f"line {loop.line}: loop step must be nonzero"
                )
        lower = self.lower_expr(loop.lower)
        upper = self.lower_expr(loop.upper)
        try:
            lo_i = lower.as_int()
            hi_i = upper.as_int()
        except ValueError:
            # Symbolic bounds: the builder's exact normalization needs
            # the step to divide (upper - lower); all bundled codes
            # guarantee that algebraically (e.g. parity-matched bounds).
            pass
        else:
            # Concrete bounds: renormalize to Fortran trip-count
            # semantics.  The last iterate is lower + step*floor(span /
            # step), not necessarily `upper`, and a deep zero-trip range
            # canonicalises to trip count 0 — without this, a
            # non-dividing step would leave a fractional trip count
            # that only explodes much later, inside evaluation.
            trips_minus_1 = max((hi_i - lo_i) // step, -1)
            upper = as_expr(lo_i + trips_minus_1 * step)
        symbol_name = loop.index + self._suffix
        with ph.do(symbol_name, lower, upper, step=step,
                   parallel=loop.parallel) as induction:
            # Within the body the index name denotes the (possibly
            # normalized) induction value expression.
            saved = self.env.get(loop.index)
            self.env[loop.index] = induction
            try:
                for stmt in loop.body:
                    if isinstance(stmt, DoLoop):
                        self.lower_loop(ph, stmt)
                    elif isinstance(stmt, IfGuard):
                        self.lower_if(ph, stmt)
                    elif isinstance(stmt, CallStmt):
                        self.lower_call(ph, stmt)
                    else:
                        self.lower_assign(ph, stmt)
            finally:
                if saved is None:
                    del self.env[loop.index]
                else:
                    self.env[loop.index] = saved

    def lower_call(self, ph: PhaseBuilder, call: CallStmt) -> None:
        """Inline-expand a subroutine call.

        This is the paper's inter-procedural step: dummy arrays bind to
        the caller's (linear) arrays but keep the *callee's declared
        shape* for subscript linearisation — an ``array A(M, N)``
        redeclaration of a 1-D actual is exactly the array-reshaping
        case §1 highlights.  Scalar dummies bind to arbitrary caller
        expressions; loop indices are freshened per call site.
        """
        sub = self.subroutines.get(call.name)
        if sub is None:
            raise LoweringError(
                f"line {call.line}: call to unknown subroutine "
                f"{call.name!r}"
            )
        if len(call.args) != len(sub.params):
            raise LoweringError(
                f"line {call.line}: {call.name} expects "
                f"{len(sub.params)} arguments, got {len(call.args)}"
            )
        if self._inline_depth >= 8:
            raise LoweringError(
                f"line {call.line}: call nesting too deep (recursion?)"
            )

        saved_env = dict(self.env)
        saved_arrays = dict(self.arrays)
        saved_suffix = self._suffix
        self._call_counter += 1
        self._inline_depth += 1
        self._suffix = f"{saved_suffix}_c{self._call_counter}"
        try:
            shape_decls = {a.name: a for a in sub.arrays}
            # Pass 1: bind scalar dummies (shape declarations of the
            # array dummies may reference them, regardless of argument
            # order — trans(A, B, M, N) reshapes A by the later M, N).
            array_bindings = []
            for dummy, actual in zip(sub.params, call.args):
                if (
                    isinstance(actual, Name)
                    and actual.ident in saved_arrays
                ):
                    array_bindings.append((dummy, saved_arrays[actual.ident]))
                else:
                    self.env[dummy] = self.lower_expr(actual)
            # Pass 2: bind array dummies, applying reshapes.
            for dummy, base in array_bindings:
                decl = shape_decls.get(dummy)
                if decl is not None:
                    # reshape: callee-declared extents over the actual's
                    # storage
                    from ..core import ArrayDecl as IRArrayDecl

                    extents = tuple(
                        self.lower_expr(e) for e in decl.extents
                    )
                    self.arrays[dummy] = IRArrayDecl(
                        name=base.name, size=base.size, dims=extents
                    )
                else:
                    self.arrays[dummy] = base
            # callee-local arrays (declared but not dummies) must exist
            for decl in sub.arrays:
                if decl.name not in sub.params:
                    if decl.name not in self.arrays:
                        extents = tuple(
                            self.lower_expr(e) for e in decl.extents
                        )
                        self.arrays[decl.name] = self.builder.array(
                            decl.name, *extents
                        )
            for stmt in sub.body:
                if isinstance(stmt, DoLoop):
                    self.lower_loop(ph, stmt)
                elif isinstance(stmt, IfGuard):
                    self.lower_if(ph, stmt)
                elif isinstance(stmt, CallStmt):
                    self.lower_call(ph, stmt)
                else:
                    self.lower_assign(ph, stmt)
        finally:
            self.env = saved_env
            # keep any newly created callee-local arrays registered
            created = {
                k: v for k, v in self.arrays.items()
                if k not in saved_arrays and k not in sub.params
            }
            self.arrays = saved_arrays
            self.arrays.update(created)
            self._suffix = saved_suffix
            self._inline_depth -= 1

    def lower_phase(self, phase: PhaseDef) -> None:
        with self.builder.phase(phase.name) as ph:
            for item in phase.body:
                if isinstance(item, CallStmt):
                    self.lower_call(ph, item)
                else:
                    self.lower_loop(ph, item)
            for name in phase.private:
                if name not in self.arrays:
                    raise LoweringError(
                        f"phase {phase.name}: unknown private array {name!r}"
                    )
                ph.mark_privatizable(name)

    def run(self) -> Program:
        self.lower_decls()
        for phase in self.ast.phases:
            self.lower_phase(phase)
        return self.builder.build()


def lower_program(ast: ProgramDef) -> Program:
    """Lower a parsed :class:`ProgramDef` to the analysis IR."""
    return _Lowerer(ast).run()


def parse_and_lower(source: str) -> Program:
    """One-shot front end: mini-Fortran source -> analysis-ready Program."""
    return lower_program(parse_program(source))
