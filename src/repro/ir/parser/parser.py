"""Recursive-descent parser for the mini-Fortran dialect.

Grammar (newline-separated statements; keywords case-insensitive)::

    program   :=  "program" IDENT NL (decl | subroutine | phase)*
                  "end" "program"? NL
    subroutine:=  "subroutine" IDENT "(" IDENT ("," IDENT)* ")" NL
                  (arraydecl | loop | call)* "end" "subroutine" NL
                  -- an array decl naming a dummy argument RESHAPES it
    decl      :=  "param" IDENT ("=" "2" "**" IDENT)? NL
               |  "array" IDENT "(" expr ("," expr)* ")" NL
    phase     :=  "phase" IDENT NL (loop | private)* endphase NL
    private   :=  "private" IDENT ("," IDENT)* NL
    loop      :=  ("do" | "doall") IDENT "=" expr "," expr
                  ("," "step"? expr)? NL stmt* enddo NL
    stmt      :=  loop | ifguard | assign
               |  "call" IDENT "(" expr ("," expr)* ")" NL
    ifguard   :=  "if" "(" expr relop expr ")" "then" NL stmt*
                  ("endif" | "end" "if") NL    -- no ELSE branch
    relop     :=  "<" | "<=" | ">" | ">=" | "==" | "/="
    assign    :=  arrayref "=" expr NL
    expr      :=  term (("+" | "-") term)*
    term      :=  power (("*" | "/") power)*
    power     :=  unary ("**" power)?            -- right associative
    unary     :=  "-" unary | atom
    atom      :=  NUMBER | IDENT | IDENT "(" expr ("," expr)* ")"
               |  "(" expr ")"

``IDENT(...)`` parses as an :class:`ArrayRef` when the name was declared
with ``array``, else as an opaque :class:`Call` (intrinsics like
``f(...)`` on right-hand sides).
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    AstExpr,
    BinOp,
    Call,
    CallStmt,
    Comparison,
    DoLoop,
    IfGuard,
    Name,
    NumberLit,
    ParamDecl,
    PhaseDef,
    ProgramDef,
    SubroutineDef,
    UnaryOp,
)
from .lexer import Token, TokenKind, tokenize

__all__ = ["ParseError", "parse_program"]


class ParseError(SyntaxError):
    """Parse failure with token context."""


#: Relational operators accepted in IF-guard conditions.
_RELOPS = frozenset({"<", "<=", ">", ">=", "==", "/="})


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.array_names: set[str] = set()

    # -- token plumbing -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"line {tok.line}: {message} (got {tok})")

    def unclosed(self, what: str, opened_line: int, closer: str) -> ParseError:
        """Positioned error for a construct still open at end of input."""
        return ParseError(
            f"line {self.peek().line}: unexpected end of input — unclosed "
            f"{what} opened at line {opened_line}; expected {closer}"
        )

    def expect_op(self, op: str) -> Token:
        tok = self.peek()
        if tok.kind is TokenKind.OP and tok.text == op:
            return self.advance()
        raise self.error(f"expected {op!r}")

    def expect_kw(self, *words: str) -> Token:
        tok = self.peek()
        if tok.is_kw(*words):
            return self.advance()
        raise self.error(f"expected {' or '.join(words)}")

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            return self.advance()
        raise self.error("expected identifier")

    def expect_newline(self) -> None:
        tok = self.peek()
        if tok.kind is TokenKind.NEWLINE:
            self.advance()
            return
        if tok.kind is TokenKind.EOF:
            return
        raise self.error("expected end of line")

    def skip_newlines(self) -> None:
        while self.peek().kind is TokenKind.NEWLINE:
            self.advance()

    def at_op(self, op: str) -> bool:
        tok = self.peek()
        return tok.kind is TokenKind.OP and tok.text == op

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> AstExpr:
        left = self.parse_term()
        while self.at_op("+") or self.at_op("-"):
            op = self.advance().text
            right = self.parse_term()
            left = BinOp(op, left, right)
        return left

    def parse_term(self) -> AstExpr:
        left = self.parse_power()
        while self.at_op("*") or self.at_op("/"):
            op = self.advance().text
            right = self.parse_power()
            left = BinOp(op, left, right)
        return left

    def parse_power(self) -> AstExpr:
        base = self.parse_unary()
        if self.at_op("**"):
            self.advance()
            exponent = self.parse_power()  # right associative
            return BinOp("**", base, exponent)
        return base

    def parse_unary(self) -> AstExpr:
        if self.at_op("-"):
            line = self.advance().line
            return UnaryOp("-", self.parse_unary(), line)
        if self.at_op("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_atom()

    def parse_atom(self) -> AstExpr:
        tok = self.peek()
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            return NumberLit(int(tok.text), tok.line)
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.at_op("("):
                self.advance()
                args = [self.parse_expr()]
                while self.at_op(","):
                    self.advance()
                    args.append(self.parse_expr())
                self.expect_op(")")
                if tok.text in self.array_names:
                    return ArrayRef(tok.text, tuple(args), tok.line)
                return Call(tok.text, tuple(args), tok.line)
            return Name(tok.text, tok.line)
        if self.at_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        raise self.error("expected expression")

    # -- statements -----------------------------------------------------------

    def parse_loop(self) -> DoLoop:
        kw = self.expect_kw("do", "doall")
        parallel = kw.text == "doall"
        index = self.expect_ident().text
        self.expect_op("=")
        lower = self.parse_expr()
        self.expect_op(",")
        upper = self.parse_expr()
        step: Optional[AstExpr] = None
        if self.at_op(","):
            self.advance()
            if self.peek().is_kw("step"):
                self.advance()
            step = self.parse_expr()
        elif self.peek().is_kw("step"):
            raise self.error("expected ',' before the STEP clause")
        self.expect_newline()
        body: list = []
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.kind is TokenKind.EOF:
                raise self.unclosed(
                    f"'{kw.text}' loop over {index}", kw.line, "'end do'"
                )
            if tok.is_kw("enddo"):
                self.advance()
                break
            if tok.is_kw("end"):
                self.advance()
                nxt = self.peek()
                if nxt.is_kw("do", "doall"):
                    self.advance()
                    break
                raise self.error("expected 'end do' to close the loop")
            body.append(self.parse_statement())
        self.expect_newline()
        return DoLoop(
            index=index, lower=lower, upper=upper, step=step,
            parallel=parallel, body=body, line=kw.line,
        )

    def parse_call(self) -> CallStmt:
        kw = self.expect_kw("call")
        name = self.expect_ident().text
        self.expect_op("(")
        args = [self.parse_expr()]
        while self.at_op(","):
            self.advance()
            args.append(self.parse_expr())
        self.expect_op(")")
        self.expect_newline()
        return CallStmt(name=name, args=tuple(args), line=kw.line)

    def parse_cond(self) -> Comparison:
        left = self.parse_expr()
        tok = self.peek()
        if not (tok.kind is TokenKind.OP and tok.text in _RELOPS):
            raise self.error(
                "expected a comparison operator (<, <=, >, >=, ==, /=)"
            )
        self.advance()
        right = self.parse_expr()
        return Comparison(tok.text, left, right, tok.line)

    def parse_if(self) -> IfGuard:
        kw = self.expect_kw("if")
        self.expect_op("(")
        cond = self.parse_cond()
        self.expect_op(")")
        self.expect_kw("then")
        self.expect_newline()
        body: list = []
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.kind is TokenKind.EOF:
                raise self.unclosed("IF guard", kw.line, "'end if'")
            if tok.is_kw("endif"):
                self.advance()
                break
            if tok.is_kw("end"):
                self.advance()
                if self.peek().is_kw("if"):
                    self.advance()
                    break
                raise self.error("expected 'end if' to close the guard")
            if tok.is_kw("else"):
                raise self.error(
                    "ELSE branches are not supported; write a second "
                    "IF guard with the complementary condition"
                )
            body.append(self.parse_statement())
        self.expect_newline()
        return IfGuard(cond=cond, body=body, line=kw.line)

    def parse_statement(self):
        tok = self.peek()
        if tok.is_kw("do", "doall"):
            return self.parse_loop()
        if tok.is_kw("if"):
            return self.parse_if()
        if tok.is_kw("call"):
            return self.parse_call()
        if tok.kind is TokenKind.IDENT:
            target = self.parse_atom()
            if not isinstance(target, ArrayRef):
                raise self.error(
                    f"assignment target {tok.text!r} is not a declared array"
                )
            self.expect_op("=")
            rhs = self.parse_expr()
            self.expect_newline()
            return Assign(target=target, rhs=rhs, line=tok.line)
        raise self.error("expected DO loop, IF guard or assignment")

    # -- top level ---------------------------------------------------------------

    def parse_phase(self) -> PhaseDef:
        kw = self.expect_kw("phase")
        name = self.expect_ident().text
        self.expect_newline()
        phase = PhaseDef(name=name, line=kw.line)
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.kind is TokenKind.EOF:
                raise self.unclosed(
                    f"phase {name}", kw.line, "'end phase'"
                )
            if tok.is_kw("endphase"):
                self.advance()
                break
            if tok.is_kw("end"):
                self.advance()
                if self.peek().is_kw("phase"):
                    self.advance()
                    break
                raise self.error("expected 'end phase'")
            if tok.is_kw("private"):
                self.advance()
                phase.private.append(self.expect_ident().text)
                while self.at_op(","):
                    self.advance()
                    phase.private.append(self.expect_ident().text)
                self.expect_newline()
                continue
            if tok.is_kw("do", "doall"):
                phase.body.append(self.parse_loop())
                continue
            if tok.is_kw("call"):
                phase.body.append(self.parse_call())
                continue
            raise self.error(
                "expected loop, call, 'private' or 'end phase'"
            )
        self.expect_newline()
        return phase

    def parse_subroutine(self) -> SubroutineDef:
        kw = self.expect_kw("subroutine")
        name = self.expect_ident().text
        self.expect_op("(")
        params = [self.expect_ident().text]
        while self.at_op(","):
            self.advance()
            params.append(self.expect_ident().text)
        self.expect_op(")")
        self.expect_newline()
        sub = SubroutineDef(name=name, params=tuple(params), line=kw.line)
        # Inside the body any dummy argument may appear in reference
        # position (scalar dummies simply never do); the binding is
        # scoped to this subroutine.
        saved_names = set(self.array_names)
        self.array_names.update(params)
        try:
            while True:
                self.skip_newlines()
                tok = self.peek()
                if tok.kind is TokenKind.EOF:
                    raise self.unclosed(
                        f"subroutine {name}", kw.line, "'end subroutine'"
                    )
                if tok.is_kw("endsubroutine"):
                    self.advance()
                    break
                if tok.is_kw("end"):
                    self.advance()
                    if self.peek().is_kw("subroutine"):
                        self.advance()
                        break
                    raise self.error("expected 'end subroutine'")
                if tok.is_kw("array"):
                    self.advance()
                    aname = self.expect_ident().text
                    self.expect_op("(")
                    extents = [self.parse_expr()]
                    while self.at_op(","):
                        self.advance()
                        extents.append(self.parse_expr())
                    self.expect_op(")")
                    self.array_names.add(aname)
                    sub.arrays.append(
                        ArrayDecl(aname, tuple(extents), tok.line)
                    )
                    self.expect_newline()
                    continue
                if tok.is_kw("do", "doall"):
                    sub.body.append(self.parse_loop())
                    continue
                if tok.is_kw("call"):
                    sub.body.append(self.parse_call())
                    continue
                raise self.error(
                    "expected declaration, loop, call or 'end subroutine'"
                )
        finally:
            # callee-local array declarations stay visible (their
            # storage is created at first inlining); dummy names vanish
            locals_declared = {a.name for a in sub.arrays}
            self.array_names = saved_names | (
                locals_declared - set(params)
            )
        self.expect_newline()
        return sub

    def parse_program(self) -> ProgramDef:
        self.skip_newlines()
        kw = self.expect_kw("program")
        name = self.expect_ident().text
        self.expect_newline()
        prog = ProgramDef(name=name)
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.is_kw("endprogram"):
                self.advance()
                break
            if tok.is_kw("end"):
                self.advance()
                if self.peek().is_kw("program"):
                    self.advance()
                break
            if tok.is_kw("param"):
                self.advance()
                pname = self.expect_ident().text
                exponent = None
                if self.at_op("="):
                    self.advance()
                    two = self.peek()
                    if two.kind is TokenKind.NUMBER and two.text == "2":
                        self.advance()
                        self.expect_op("**")
                        exponent = self.expect_ident().text
                    else:
                        raise self.error(
                            "only 'param NAME = 2**exp' initialisers are "
                            "supported"
                        )
                prog.params.append(ParamDecl(pname, exponent, tok.line))
                self.expect_newline()
                continue
            if tok.is_kw("array"):
                self.advance()
                aname = self.expect_ident().text
                self.expect_op("(")
                extents = [self.parse_expr()]
                while self.at_op(","):
                    self.advance()
                    extents.append(self.parse_expr())
                self.expect_op(")")
                self.array_names.add(aname)
                prog.arrays.append(
                    ArrayDecl(aname, tuple(extents), tok.line)
                )
                self.expect_newline()
                continue
            if tok.is_kw("phase"):
                prog.phases.append(self.parse_phase())
                continue
            if tok.is_kw("subroutine"):
                prog.subroutines.append(self.parse_subroutine())
                continue
            if tok.kind is TokenKind.EOF:
                raise self.unclosed(
                    f"program {name}", kw.line, "'end program'"
                )
            raise self.error("expected declaration, phase or 'end program'")
        return prog


def parse_program(source: str) -> ProgramDef:
    """Parse mini-Fortran source into a :class:`ProgramDef` AST."""
    return _Parser(tokenize(source)).parse_program()
