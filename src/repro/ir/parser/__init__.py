"""Mini-Fortran front end: tokenize -> parse -> lower to the IR.

The entry point is :func:`parse_and_lower`, which turns a source string
written in the dialect documented in :mod:`repro.ir.parser.lexer` into
an analysis-ready :class:`repro.ir.Program`.
"""

from .lexer import LexError, Token, TokenKind, tokenize
from .ast_nodes import ProgramDef
from .parser import ParseError, parse_program
from .lower import LoweringError, lower_program, parse_and_lower

__all__ = [
    "LexError",
    "LoweringError",
    "ParseError",
    "ProgramDef",
    "Token",
    "TokenKind",
    "lower_program",
    "parse_and_lower",
    "parse_program",
    "tokenize",
]
