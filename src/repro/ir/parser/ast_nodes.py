"""AST for the mini-Fortran dialect (pre-lowering representation)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

__all__ = [
    "NumberLit",
    "Name",
    "BinOp",
    "UnaryOp",
    "Call",
    "ArrayRef",
    "AstExpr",
    "ParamDecl",
    "ArrayDecl",
    "Assign",
    "Comparison",
    "IfGuard",
    "DoLoop",
    "PrivateDecl",
    "PhaseDef",
    "ProgramDef",
    "CallStmt",
    "SubroutineDef",
]


@dataclass(frozen=True)
class NumberLit:
    value: int
    line: int = 0


@dataclass(frozen=True)
class Name:
    ident: str
    line: int = 0


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / **
    left: "AstExpr"
    right: "AstExpr"
    line: int = 0


@dataclass(frozen=True)
class UnaryOp:
    op: str  # -
    operand: "AstExpr"
    line: int = 0


@dataclass(frozen=True)
class Call:
    """A function call — opaque arithmetic; its array refs are reads."""

    func: str
    args: tuple
    line: int = 0


@dataclass(frozen=True)
class ArrayRef:
    """``X(e1, e2, ...)`` where X was declared an array."""

    array: str
    subscripts: tuple
    line: int = 0


AstExpr = Union[NumberLit, Name, BinOp, UnaryOp, Call, ArrayRef]


@dataclass(frozen=True)
class ParamDecl:
    name: str
    pow2_exponent: Optional[str] = None  # param P = 2**p
    line: int = 0


@dataclass(frozen=True)
class ArrayDecl:
    name: str
    extents: tuple  # tuple[AstExpr, ...]
    line: int = 0


@dataclass(frozen=True)
class Assign:
    """``target = rhs``: one write plus the reads mentioned anywhere."""

    target: ArrayRef
    rhs: AstExpr
    line: int = 0


@dataclass(frozen=True)
class Comparison:
    """``left <relop> right`` — only valid as an IF-guard condition."""

    op: str  # < <= > >= == /=
    left: AstExpr
    right: AstExpr
    line: int = 0


@dataclass
class IfGuard:
    """``if (cond) then ... end if`` around statements inside a loop.

    Guards are *summarized conservatively* at lowering: the guarded
    body's references are kept unconditionally (the standard LMAD
    over-approximation for control flow the descriptor algebra cannot
    carry), and the condition's own array references count as reads.
    """

    cond: Comparison
    body: list = field(default_factory=list)  # DoLoop | Assign | IfGuard
    line: int = 0


@dataclass
class DoLoop:
    index: str
    lower: AstExpr
    upper: AstExpr
    step: Optional[AstExpr]
    parallel: bool
    body: list = field(default_factory=list)  # DoLoop | Assign
    line: int = 0


@dataclass(frozen=True)
class CallStmt:
    """``call sub(arg, ...)`` — inline-expanded at lowering (the
    paper's inter-procedural analysis via LMAD translation)."""

    name: str
    args: tuple  # tuple[AstExpr | Name]
    line: int = 0


@dataclass
class SubroutineDef:
    """A subroutine with dummy arguments.

    ``arrays`` may *redeclare a dummy argument's shape* — that is the
    array-reshaping-at-call-boundary case the paper highlights; locals
    declared here are private to each inlined instance conceptually but
    lowered against the caller's namespace.
    """

    name: str
    params: tuple  # tuple[str, ...] dummy argument names
    arrays: list = field(default_factory=list)  # ArrayDecl (dummy shapes)
    body: list = field(default_factory=list)  # DoLoop | CallStmt
    line: int = 0


@dataclass
class PhaseDef:
    name: str
    body: list = field(default_factory=list)  # DoLoop (roots)
    private: list = field(default_factory=list)  # array names
    line: int = 0


@dataclass
class ProgramDef:
    name: str
    params: list = field(default_factory=list)
    arrays: list = field(default_factory=list)
    phases: list = field(default_factory=list)
    subroutines: list = field(default_factory=list)
