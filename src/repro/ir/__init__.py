"""Loop-nest IR: phases, programs, builder DSL, normalization, interpreter.

Programs enter the system either through :class:`ProgramBuilder` (Python
DSL) or through the mini-Fortran front end in :mod:`repro.ir.parser`.
"""

from .core import (
    AccessKind,
    ArrayDecl,
    LoopNode,
    Phase,
    PhaseAccess,
    Program,
    RefNode,
    Reference,
)
from .builder import PhaseBuilder, ProgramBuilder
from .normalize import linearize, normalize_loop, normalize_phase
from .validate import Diagnostic, validate_phase, validate_program
from .interp import (
    AccessTrace,
    IterationAccesses,
    enumerate_phase,
    iteration_access_set,
    phase_access_set,
    reference_addresses,
)

__all__ = [
    "AccessKind",
    "AccessTrace",
    "Diagnostic",
    "ArrayDecl",
    "IterationAccesses",
    "LoopNode",
    "Phase",
    "PhaseAccess",
    "PhaseBuilder",
    "Program",
    "ProgramBuilder",
    "RefNode",
    "Reference",
    "enumerate_phase",
    "iteration_access_set",
    "linearize",
    "normalize_loop",
    "normalize_phase",
    "phase_access_set",
    "reference_addresses",
    "validate_phase",
    "validate_program",
]
