"""Concrete interpretation of loop nests: exact address enumeration.

This is the brute-force oracle the descriptor algebra is validated
against, and the access-stream generator feeding the DSM simulator: for a
phase and a concrete parameter binding it enumerates, per parallel
iteration, every address each reference touches.

The innermost loop level is vectorised with NumPy whenever the subscript
is linear in the innermost index (constant symbolic stride); non-linear
occurrences (e.g. the index living in a ``2**L`` exponent) are batched
through :mod:`repro.symbolic.compile` closures, with exact per-iteration
evaluation as the last resort.

:func:`ragged_nest_addresses` is the descriptor-first enumerator behind
the executor's wide fast path: it expands a whole (possibly
non-rectangular, ``Pow2``-subscripted) loop nest level by level into
NumPy columns — per-row trip counts, ``np.repeat`` fan-out, compiled
bound/subscript evaluation — so a nest's full address stream
materialises in a handful of array operations instead of a Python loop
per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from ..symbolic import (
    Expr,
    Symbol,
    UncompilableExpr,
    compile_expr,
    shift_difference,
)
from .core import AccessKind, ArrayDecl, LoopNode, Phase, PhaseAccess, RefNode

__all__ = [
    "AccessTrace",
    "IterationAccesses",
    "NestEnumMiss",
    "NestTooBig",
    "enumerate_phase",
    "phase_access_set",
    "iteration_access_set",
    "ragged_nest_addresses",
    "reference_addresses",
    "set_vectorized",
]

#: Gate for the compiled/vectorized paths (the perf harness switches it
#: off to time the interpreted baseline).
_VECTOR_ENABLED = True


def set_vectorized(enabled: bool) -> bool:
    """Enable/disable compiled vectorized enumeration; returns old value."""
    global _VECTOR_ENABLED
    old = _VECTOR_ENABLED
    _VECTOR_ENABLED = bool(enabled)
    return old


class NestEnumMiss(Exception):
    """The nest falls outside the vectorized enumeration fragment."""


class NestTooBig(Exception):
    """Expansion would exceed the cell budget; retry with a smaller block."""


@dataclass
class AccessTrace:
    """Addresses touched by one reference (with multiplicity)."""

    ref_label: str
    array: str
    kind: AccessKind
    addresses: np.ndarray  # int64, one entry per dynamic access


@dataclass
class IterationAccesses:
    """All traces of one parallel iteration (``iteration`` is None for
    accesses outside the parallel loop)."""

    iteration: Optional[int]
    traces: list


def _as_int(value: Fraction, what: str) -> int:
    if value.denominator != 1:
        raise ValueError(f"{what} evaluated to non-integer {value}")
    return int(value)


def _eval_bound(expr: Expr, env: dict) -> int:
    return _as_int(expr.evalf(env), f"loop bound {expr}")


def _subscript_addresses(
    subscript: Expr, loop: LoopNode, env: Mapping, lo: int, hi: int
) -> np.ndarray:
    """Addresses produced by ``subscript`` as ``loop.index`` sweeps lo..hi.

    ``env`` is never mutated: the loop index is bound in a scoped copy,
    so callers holding the dict (or enumerating concurrently) can never
    observe a poisoned environment.
    """
    n = hi - lo + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    name = loop.index.name
    if loop.index not in subscript.free_symbols():
        base = _as_int(subscript.evalf(env), f"subscript {subscript}")
        return np.full(n, base, dtype=np.int64)
    stride_expr = shift_difference(subscript, loop.index)
    if loop.index not in stride_expr.free_symbols():
        scoped = dict(env)
        scoped[name] = Fraction(lo)
        base = _as_int(subscript.evalf(scoped), f"subscript {subscript}")
        stride = _as_int(stride_expr.evalf(scoped), f"stride of {subscript}")
        return base + stride * np.arange(n, dtype=np.int64)
    # Non-linear in the innermost index: batch through a compiled closure
    # when possible, else exact per-iteration evaluation.
    if _VECTOR_ENABLED:
        try:
            compiled = compile_expr(subscript)
            vec_env = dict(env)
            vec_env[name] = np.arange(lo, hi + 1, dtype=np.int64)
            values = compiled.evali(vec_env)
            if isinstance(values, np.ndarray):
                return values
            return np.full(n, values, dtype=np.int64)
        except UncompilableExpr:
            pass
    scoped = dict(env)
    out = np.empty(n, dtype=np.int64)
    for offset in range(n):
        scoped[name] = Fraction(lo + offset)
        out[offset] = _as_int(subscript.evalf(scoped), f"subscript {subscript}")
    return out


def _compiled_column(expr: Expr, scope: Mapping, rows: int) -> np.ndarray:
    """Evaluate ``expr`` to an int64 column of length ``rows``.

    ``scope`` holds scalar parameters plus per-row index columns; scalar
    results (no row dependence) are broadcast.  Raises
    :class:`NestEnumMiss` for expressions outside the compilable family.
    """
    try:
        compiled = compile_expr(expr)
    except UncompilableExpr:
        raise NestEnumMiss() from None
    value = compiled.evali(scope)
    if isinstance(value, np.ndarray):
        if value.dtype != np.int64:
            value = value.astype(np.int64)
        return value
    return np.full(rows, value, dtype=np.int64)


def ragged_nest_addresses(
    loops: Sequence[LoopNode],
    subscript: Optional[Expr],
    env: Mapping,
    level0_values: Optional[np.ndarray] = None,
    max_cells: int = 1 << 25,
) -> tuple:
    """Vectorised address stream of one reference over its loop chain.

    ``loops`` is the chain of enclosing loops, outermost first.  The nest
    is expanded level by level: at each depth the (possibly outer-index-
    dependent) bounds are evaluated for every live row with compiled
    closures, then rows fan out via ``np.repeat`` — so non-rectangular
    nests and ``Pow2``-in-subscript phases vectorise just like
    rectangular affine ones.

    Returns ``(addresses, ordinals)``: the int64 address of every dynamic
    access (in nest order, with multiplicity) and the 0-based ordinal of
    the outermost-loop iteration it belongs to.  When ``subscript`` is
    None only the ordinals are computed (``addresses`` is None) — enough
    for layout-free counting.  ``level0_values`` restricts the outermost
    loop to an explicit block of index values so callers can chunk huge
    nests; its bounds are not re-evaluated in that case.

    Raises :class:`NestEnumMiss` when a bound/subscript is not
    compilable and :class:`NestTooBig` when the expansion would exceed
    ``max_cells`` live cells.
    """
    if not loops:
        raise NestEnumMiss()
    base = {}
    for key, val in env.items():
        if isinstance(val, Fraction):
            if val.denominator != 1:
                base[key] = val
                continue
            val = int(val)
        base[key] = val
    cols: dict = {}
    ordinals: Optional[np.ndarray] = None
    rows = 1
    for depth, loop in enumerate(loops):
        name = loop.index.name
        if depth == 0 and level0_values is not None:
            column = np.ascontiguousarray(level0_values, dtype=np.int64)
            rows = column.size
            cols[name] = column
            ordinals = np.arange(rows, dtype=np.int64)
            continue
        scope = {**base, **cols}
        lo = _compiled_column(loop.lower, scope, rows)
        hi = _compiled_column(loop.upper, scope, rows)
        counts = np.maximum(hi - lo + 1, 0)
        total = int(counts.sum())
        if total > max_cells:
            raise NestTooBig()
        fan = np.repeat(np.arange(rows, dtype=np.int64), counts)
        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        cols = {k: v[fan] for k, v in cols.items()}
        cols[name] = lo[fan] + within
        ordinals = within if ordinals is None else ordinals[fan]
        rows = total
    if subscript is None:
        return None, ordinals
    scope = {**base, **cols}
    return _compiled_column(subscript, scope, rows), ordinals


def _walk(
    node: LoopNode,
    env: dict,
    sink: dict,
    array: Optional[str],
) -> None:
    """Accumulate address chunks for each reference under ``node``."""
    lo = _eval_bound(node.lower, env)
    hi = _eval_bound(node.upper, env)
    if hi < lo:
        return
    name = node.index.name
    # Fast path: a loop whose children are all RefNodes can vectorise
    # the whole sweep per reference.
    if all(isinstance(c, RefNode) for c in node.children):
        for child in node.children:
            ref = child.ref
            if array is not None and ref.array.name != array:
                continue
            chunk = _subscript_addresses(ref.subscript, node, env, lo, hi)
            sink.setdefault(id(child), []).append(chunk)
        return
    for value in range(lo, hi + 1):
        env[name] = Fraction(value)
        for child in node.children:
            if isinstance(child, RefNode):
                ref = child.ref
                if array is not None and ref.array.name != array:
                    continue
                addr = _as_int(ref.subscript.evalf(env), f"subscript {ref}")
                sink.setdefault(id(child), []).append(
                    np.array([addr], dtype=np.int64)
                )
            else:
                _walk(child, env, sink, array)
    del env[name]


def _collect_refnodes(node: LoopNode, array: Optional[str]) -> list:
    nodes = []
    for item in node.walk():
        if isinstance(item, RefNode):
            if array is None or item.ref.array.name == array:
                nodes.append(item)
    return nodes


def _traces_from_sink(refnodes: Sequence[RefNode], sink: dict) -> list:
    traces = []
    for rn in refnodes:
        chunks = sink.get(id(rn), [])
        if chunks:
            addresses = np.concatenate(chunks)
        else:
            addresses = np.empty(0, dtype=np.int64)
        traces.append(
            AccessTrace(
                ref_label=rn.ref.label or str(rn.ref),
                array=rn.ref.array.name,
                kind=rn.ref.kind,
                addresses=addresses,
            )
        )
    return traces


def enumerate_phase(
    phase: Phase,
    env: Mapping[str, int],
    array: Optional[Union[str, ArrayDecl]] = None,
) -> Iterator[IterationAccesses]:
    """Yield per-parallel-iteration access traces for a phase.

    For each value ``i`` of the parallel loop one :class:`IterationAccesses`
    is produced; references not nested under the parallel loop are emitted
    once with ``iteration=None``.  A phase with no parallel loop yields a
    single ``iteration=None`` record covering everything.
    """
    array_name = None
    if array is not None:
        array_name = array if isinstance(array, str) else array.name
    base_env: dict = {k: Fraction(v) for k, v in env.items()}
    par = phase.parallel_loop

    if par is None:
        sink: dict = {}
        refnodes: list = []
        for root in phase.roots:
            refnodes.extend(_collect_refnodes(root, array_name))
            _walk(root, base_env, sink, array_name)
        yield IterationAccesses(iteration=None, traces=_traces_from_sink(refnodes, sink))
        return

    # Split the tree at the parallel loop: everything outside it runs once.
    outside_sink: dict = {}
    outside_refs: list = []

    def run_outside(node: LoopNode, env: dict) -> None:
        """Interpret loops that *enclose or avoid* the parallel loop."""
        if node is par:
            return  # handled per-iteration below
        lo = _eval_bound(node.lower, env)
        hi = _eval_bound(node.upper, env)
        contains_par = any(
            isinstance(item, LoopNode) and item is par for item in node.walk()
        )
        if not contains_par:
            outside_refs.extend(_collect_refnodes(node, array_name))
            _walk(node, env, outside_sink, array_name)
            return
        # Loop encloses the parallel loop: the paper's model puts phases
        # inside outer DO loops; we require the parallel loop itself to be
        # outermost *within the phase* for per-iteration splitting.
        raise ValueError(
            f"phase {phase.name}: parallel loop must be the outermost loop "
            "of its nest for iteration-level enumeration"
        )

    for root in phase.roots:
        if root is par:
            continue
        run_outside(root, base_env)
    if outside_refs:
        yield IterationAccesses(
            iteration=None, traces=_traces_from_sink(outside_refs, outside_sink)
        )

    lo = _eval_bound(par.lower, base_env)
    hi = _eval_bound(par.upper, base_env)
    par_refnodes = []
    for child in par.children:
        if isinstance(child, RefNode):
            if array_name is None or child.ref.array.name == array_name:
                par_refnodes.append(child)
        else:
            par_refnodes.extend(_collect_refnodes(child, array_name))
    name = par.index.name
    for value in range(lo, hi + 1):
        base_env[name] = Fraction(value)
        sink = {}
        for child in par.children:
            if isinstance(child, RefNode):
                ref = child.ref
                if array_name is not None and ref.array.name != array_name:
                    continue
                addr = _as_int(ref.subscript.evalf(base_env), f"subscript {ref}")
                sink.setdefault(id(child), []).append(
                    np.array([addr], dtype=np.int64)
                )
            else:
                _walk(child, base_env, sink, array_name)
        yield IterationAccesses(
            iteration=value, traces=_traces_from_sink(par_refnodes, sink)
        )
    del base_env[name]


def _fast_phase_access_set(
    phase: Phase, env: Mapping[str, int], array_name: str
) -> Optional[np.ndarray]:
    """Vectorised unique-address set, or None outside the fast fragment."""
    refs: list = []

    def collect(node: LoopNode, chain: tuple) -> None:
        for child in node.children:
            if isinstance(child, RefNode):
                if child.ref.array.name == array_name:
                    refs.append((child.ref, chain))
            elif isinstance(child, LoopNode):
                collect(child, chain + (child,))

    for root in phase.roots:
        if not isinstance(root, LoopNode):
            return None
        collect(root, (root,))
    chunks = []
    try:
        for ref, chain in refs:
            addresses, _ = ragged_nest_addresses(chain, ref.subscript, env)
            if addresses.size:
                chunks.append(np.unique(addresses))
    except (NestEnumMiss, NestTooBig, ValueError, ZeroDivisionError,
            KeyError):
        return None
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))


def phase_access_set(
    phase: Phase, env: Mapping[str, int], array: Union[str, ArrayDecl]
) -> np.ndarray:
    """Sorted unique addresses of ``array`` touched anywhere in the phase."""
    array_name = array if isinstance(array, str) else array.name
    if _VECTOR_ENABLED:
        fast = _fast_phase_access_set(phase, env, array_name)
        if fast is not None:
            return fast
    chunks = [
        tr.addresses
        for ia in enumerate_phase(phase, env, array)
        for tr in ia.traces
    ]
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))


def iteration_access_set(
    phase: Phase,
    env: Mapping[str, int],
    array: Union[str, ArrayDecl],
    iteration: int,
) -> np.ndarray:
    """Sorted unique addresses touched by one parallel iteration."""
    for ia in enumerate_phase(phase, env, array):
        if ia.iteration == iteration:
            chunks = [tr.addresses for tr in ia.traces]
            if not chunks:
                return np.empty(0, dtype=np.int64)
            return np.unique(np.concatenate(chunks))
    return np.empty(0, dtype=np.int64)


def reference_addresses(
    access: PhaseAccess, env: Mapping[str, int]
) -> np.ndarray:
    """All addresses (with multiplicity) of one reference over its nest."""
    base_env: dict = {k: Fraction(v) for k, v in env.items()}

    def recurse(depth: int) -> list:
        loop = access.loops[depth]
        lo = _eval_bound(loop.lower, base_env)
        hi = _eval_bound(loop.upper, base_env)
        if hi < lo:
            return []
        if depth == len(access.loops) - 1:
            return [_subscript_addresses(access.ref.subscript, loop, base_env, lo, hi)]
        chunks: list = []
        name = loop.index.name
        for value in range(lo, hi + 1):
            base_env[name] = Fraction(value)
            chunks.extend(recurse(depth + 1))
        del base_env[name]
        return chunks

    chunks = recurse(0)
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)
