"""Concrete interpretation of loop nests: exact address enumeration.

This is the brute-force oracle the descriptor algebra is validated
against, and the access-stream generator feeding the DSM simulator: for a
phase and a concrete parameter binding it enumerates, per parallel
iteration, every address each reference touches.

The innermost loop level is vectorised with NumPy whenever the subscript
is linear in the innermost index (constant symbolic stride); non-linear
occurrences (e.g. the index living in a ``2**L`` exponent) fall back to
exact per-iteration evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from ..symbolic import Expr, Symbol
from .core import AccessKind, ArrayDecl, LoopNode, Phase, PhaseAccess, RefNode

__all__ = [
    "AccessTrace",
    "IterationAccesses",
    "enumerate_phase",
    "phase_access_set",
    "iteration_access_set",
    "reference_addresses",
]


@dataclass
class AccessTrace:
    """Addresses touched by one reference (with multiplicity)."""

    ref_label: str
    array: str
    kind: AccessKind
    addresses: np.ndarray  # int64, one entry per dynamic access


@dataclass
class IterationAccesses:
    """All traces of one parallel iteration (``iteration`` is None for
    accesses outside the parallel loop)."""

    iteration: Optional[int]
    traces: list


def _as_int(value: Fraction, what: str) -> int:
    if value.denominator != 1:
        raise ValueError(f"{what} evaluated to non-integer {value}")
    return int(value)


def _eval_bound(expr: Expr, env: dict) -> int:
    return _as_int(expr.evalf(env), f"loop bound {expr}")


def _subscript_addresses(
    subscript: Expr, loop: LoopNode, env: dict, lo: int, hi: int
) -> np.ndarray:
    """Addresses produced by ``subscript`` as ``loop.index`` sweeps lo..hi."""
    n = hi - lo + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    name = loop.index.name
    if loop.index not in subscript.free_symbols():
        base = _as_int(subscript.evalf(env), f"subscript {subscript}")
        return np.full(n, base, dtype=np.int64)
    stride_expr = subscript.subs({loop.index: loop.index + 1}) - subscript
    if loop.index not in stride_expr.free_symbols():
        env[name] = Fraction(lo)
        base = _as_int(subscript.evalf(env), f"subscript {subscript}")
        stride = _as_int(stride_expr.evalf(env), f"stride of {subscript}")
        del env[name]
        return base + stride * np.arange(n, dtype=np.int64)
    # Non-linear in the innermost index: exact slow path.
    out = np.empty(n, dtype=np.int64)
    for offset in range(n):
        env[name] = Fraction(lo + offset)
        out[offset] = _as_int(subscript.evalf(env), f"subscript {subscript}")
    del env[name]
    return out


def _walk(
    node: LoopNode,
    env: dict,
    sink: dict,
    array: Optional[str],
) -> None:
    """Accumulate address chunks for each reference under ``node``."""
    lo = _eval_bound(node.lower, env)
    hi = _eval_bound(node.upper, env)
    if hi < lo:
        return
    name = node.index.name
    # Fast path: a loop whose children are all RefNodes can vectorise
    # the whole sweep per reference.
    if all(isinstance(c, RefNode) for c in node.children):
        for child in node.children:
            ref = child.ref
            if array is not None and ref.array.name != array:
                continue
            chunk = _subscript_addresses(ref.subscript, node, env, lo, hi)
            sink.setdefault(id(child), []).append(chunk)
        return
    for value in range(lo, hi + 1):
        env[name] = Fraction(value)
        for child in node.children:
            if isinstance(child, RefNode):
                ref = child.ref
                if array is not None and ref.array.name != array:
                    continue
                addr = _as_int(ref.subscript.evalf(env), f"subscript {ref}")
                sink.setdefault(id(child), []).append(
                    np.array([addr], dtype=np.int64)
                )
            else:
                _walk(child, env, sink, array)
    del env[name]


def _collect_refnodes(node: LoopNode, array: Optional[str]) -> list:
    nodes = []
    for item in node.walk():
        if isinstance(item, RefNode):
            if array is None or item.ref.array.name == array:
                nodes.append(item)
    return nodes


def _traces_from_sink(refnodes: Sequence[RefNode], sink: dict) -> list:
    traces = []
    for rn in refnodes:
        chunks = sink.get(id(rn), [])
        if chunks:
            addresses = np.concatenate(chunks)
        else:
            addresses = np.empty(0, dtype=np.int64)
        traces.append(
            AccessTrace(
                ref_label=rn.ref.label or str(rn.ref),
                array=rn.ref.array.name,
                kind=rn.ref.kind,
                addresses=addresses,
            )
        )
    return traces


def enumerate_phase(
    phase: Phase,
    env: Mapping[str, int],
    array: Optional[Union[str, ArrayDecl]] = None,
) -> Iterator[IterationAccesses]:
    """Yield per-parallel-iteration access traces for a phase.

    For each value ``i`` of the parallel loop one :class:`IterationAccesses`
    is produced; references not nested under the parallel loop are emitted
    once with ``iteration=None``.  A phase with no parallel loop yields a
    single ``iteration=None`` record covering everything.
    """
    array_name = None
    if array is not None:
        array_name = array if isinstance(array, str) else array.name
    base_env: dict = {k: Fraction(v) for k, v in env.items()}
    par = phase.parallel_loop

    if par is None:
        sink: dict = {}
        refnodes: list = []
        for root in phase.roots:
            refnodes.extend(_collect_refnodes(root, array_name))
            _walk(root, base_env, sink, array_name)
        yield IterationAccesses(iteration=None, traces=_traces_from_sink(refnodes, sink))
        return

    # Split the tree at the parallel loop: everything outside it runs once.
    outside_sink: dict = {}
    outside_refs: list = []

    def run_outside(node: LoopNode, env: dict) -> None:
        """Interpret loops that *enclose or avoid* the parallel loop."""
        if node is par:
            return  # handled per-iteration below
        lo = _eval_bound(node.lower, env)
        hi = _eval_bound(node.upper, env)
        contains_par = any(
            isinstance(item, LoopNode) and item is par for item in node.walk()
        )
        if not contains_par:
            outside_refs.extend(_collect_refnodes(node, array_name))
            _walk(node, env, outside_sink, array_name)
            return
        # Loop encloses the parallel loop: the paper's model puts phases
        # inside outer DO loops; we require the parallel loop itself to be
        # outermost *within the phase* for per-iteration splitting.
        raise ValueError(
            f"phase {phase.name}: parallel loop must be the outermost loop "
            "of its nest for iteration-level enumeration"
        )

    for root in phase.roots:
        if root is par:
            continue
        run_outside(root, base_env)
    if outside_refs:
        yield IterationAccesses(
            iteration=None, traces=_traces_from_sink(outside_refs, outside_sink)
        )

    lo = _eval_bound(par.lower, base_env)
    hi = _eval_bound(par.upper, base_env)
    par_refnodes = []
    for child in par.children:
        if isinstance(child, RefNode):
            if array_name is None or child.ref.array.name == array_name:
                par_refnodes.append(child)
        else:
            par_refnodes.extend(_collect_refnodes(child, array_name))
    name = par.index.name
    for value in range(lo, hi + 1):
        base_env[name] = Fraction(value)
        sink = {}
        for child in par.children:
            if isinstance(child, RefNode):
                ref = child.ref
                if array_name is not None and ref.array.name != array_name:
                    continue
                addr = _as_int(ref.subscript.evalf(base_env), f"subscript {ref}")
                sink.setdefault(id(child), []).append(
                    np.array([addr], dtype=np.int64)
                )
            else:
                _walk(child, base_env, sink, array_name)
        yield IterationAccesses(
            iteration=value, traces=_traces_from_sink(par_refnodes, sink)
        )
    del base_env[name]


def phase_access_set(
    phase: Phase, env: Mapping[str, int], array: Union[str, ArrayDecl]
) -> np.ndarray:
    """Sorted unique addresses of ``array`` touched anywhere in the phase."""
    chunks = [
        tr.addresses
        for ia in enumerate_phase(phase, env, array)
        for tr in ia.traces
    ]
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))


def iteration_access_set(
    phase: Phase,
    env: Mapping[str, int],
    array: Union[str, ArrayDecl],
    iteration: int,
) -> np.ndarray:
    """Sorted unique addresses touched by one parallel iteration."""
    for ia in enumerate_phase(phase, env, array):
        if ia.iteration == iteration:
            chunks = [tr.addresses for tr in ia.traces]
            if not chunks:
                return np.empty(0, dtype=np.int64)
            return np.unique(np.concatenate(chunks))
    return np.empty(0, dtype=np.int64)


def reference_addresses(
    access: PhaseAccess, env: Mapping[str, int]
) -> np.ndarray:
    """All addresses (with multiplicity) of one reference over its nest."""
    base_env: dict = {k: Fraction(v) for k, v in env.items()}

    def recurse(depth: int) -> list:
        loop = access.loops[depth]
        lo = _eval_bound(loop.lower, base_env)
        hi = _eval_bound(loop.upper, base_env)
        if hi < lo:
            return []
        if depth == len(access.loops) - 1:
            return [_subscript_addresses(access.ref.subscript, loop, base_env, lo, hi)]
        chunks: list = []
        name = loop.index.name
        for value in range(lo, hi + 1):
            base_env[name] = Fraction(value)
            chunks.extend(recurse(depth + 1))
        del base_env[name]
        return chunks

    chunks = recurse(0)
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)
