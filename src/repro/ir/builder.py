"""Fluent construction of phases and programs.

The analysis consumes normalized loop nests; writing :class:`LoopNode`
trees by hand is noisy, so this module provides a context-manager DSL
mirroring the paper's code listings::

    bld = ProgramBuilder("tfft2")
    P, p = bld.pow2_param("P", "p")
    Q, q = bld.pow2_param("Q", "q")
    X = bld.array("X", 2 * P * Q)

    with bld.phase("F3") as F3:
        with F3.doall("I", 0, Q - 1) as I:
            with F3.do("L", 1, p) as L:
                with F3.do("J", 0, P * pow2(-L) - 1) as J:
                    with F3.do("K", 0, pow2(L - 1) - 1) as K:
                        F3.read(X, 2*P*I + pow2(L-1)*J + K)
                        F3.write(X, 2*P*I + pow2(L-1)*J + K + P/2)

    program = bld.build()

Loops opened with non-zero lower bounds or non-unit steps are normalized
on the fly (index shifted to start at 0), matching the paper's
assumption that "loops have been normalized".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

from ..symbolic import Expr, ExprLike, Symbol, as_expr, floor_div, sym
from .core import (
    AccessKind,
    ArrayDecl,
    LoopNode,
    Phase,
    Program,
    RefNode,
    Reference,
)
from .normalize import linearize

__all__ = ["PhaseBuilder", "ProgramBuilder"]


class PhaseBuilder:
    """Builds one phase; obtained from :meth:`ProgramBuilder.phase`."""

    def __init__(self, name: str, program: Optional[Program] = None):
        self.name = name
        self._program = program
        self._roots: list[LoopNode] = []
        self._stack: list[LoopNode] = []
        self._privatizable: set[str] = set()

    # -- loops ---------------------------------------------------------------

    @contextmanager
    def do(
        self,
        index: Union[str, Symbol],
        lower: ExprLike,
        upper: ExprLike,
        step: int = 1,
        parallel: bool = False,
    ) -> Iterator[Symbol]:
        """Open a sequential DO loop; yields the (normalized) index symbol.

        With ``step != 1`` or ``lower != 0`` the loop is normalized: the
        yielded symbol ``i`` runs ``0..trip-1`` and user subscripts should
        be written in terms of the *original* induction value, obtained as
        ``lower + step*i`` — the helper returns that expression instead of
        the bare symbol whenever normalization changed anything.
        """
        index_sym = sym(index) if isinstance(index, str) else index
        lower_e, upper_e = as_expr(lower), as_expr(upper)
        if step == 0:
            raise ValueError("loop step must be nonzero")
        if step == 1 and lower_e.is_zero:
            node = LoopNode(index=index_sym, lower=lower_e, upper=upper_e,
                            parallel=parallel)
            yield_value: Expr = index_sym
        else:
            # normalize: i' in 0..trip-1, original = lower + step*i'.
            # Fortran trip-count semantics: the number of full steps that
            # fit is floor((upper-lower)/step) for either step sign; the
            # exact-division shortcut keeps affine bounds affine.
            trip_minus_1 = floor_div(upper_e - lower_e, step)
            node = LoopNode(index=index_sym, lower=as_expr(0),
                            upper=trip_minus_1, parallel=parallel)
            yield_value = lower_e + step * index_sym
        self._attach(node)
        self._stack.append(node)
        try:
            yield yield_value  # type: ignore[misc]
        finally:
            self._stack.pop()

    def doall(
        self,
        index: Union[str, Symbol],
        lower: ExprLike,
        upper: ExprLike,
        step: int = 1,
    ):
        """Open the (single) parallel loop of the phase."""
        return self.do(index, lower, upper, step=step, parallel=True)

    def _attach(self, node: LoopNode) -> None:
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self._roots.append(node)

    # -- references ------------------------------------------------------------

    def _add_ref(self, array: ArrayDecl, kind: AccessKind,
                 subscripts: Sequence[ExprLike], label: str) -> Reference:
        if not self._stack:
            raise RuntimeError("references must appear inside a loop")
        subscript = linearize(array, [as_expr(s) for s in subscripts])
        ref = Reference(array=array, subscript=subscript, kind=kind, label=label)
        self._stack[-1].children.append(RefNode(ref))
        return ref

    def read(self, array: ArrayDecl, *subscripts: ExprLike,
             label: str = "") -> Reference:
        """Record a read access ``array(subscripts...)``.

        Multi-dimensional subscripts are linearised column-major using the
        array's declared extents.
        """
        return self._add_ref(array, AccessKind.READ, subscripts, label)

    def write(self, array: ArrayDecl, *subscripts: ExprLike,
              label: str = "") -> Reference:
        """Record a write access ``array(subscripts...)``."""
        return self._add_ref(array, AccessKind.WRITE, subscripts, label)

    def update(self, array: ArrayDecl, *subscripts: ExprLike,
               label: str = "") -> tuple[Reference, Reference]:
        """Record a read-modify-write (both a read and a write)."""
        r = self.read(array, *subscripts, label=label)
        w = self.write(array, *subscripts, label=label)
        return r, w

    def mark_privatizable(self, *arrays: Union[str, ArrayDecl]) -> None:
        """Declare arrays privatizable in this phase (attribute ``P``)."""
        for a in arrays:
            self._privatizable.add(a if isinstance(a, str) else a.name)

    # -- finish ------------------------------------------------------------------

    def build(self) -> Phase:
        if self._stack:
            raise RuntimeError("unclosed loop in phase builder")
        return Phase(self.name, roots=self._roots,
                     privatizable=self._privatizable)


class ProgramBuilder:
    """Builds a :class:`Program` phase by phase."""

    def __init__(self, name: str):
        self._program = Program(name)

    def param(self, name: str, *, positive: bool = True,
              minimum: int = None) -> Symbol:
        """Declare a scalar parameter (positive integer by default).

        ``minimum`` optionally records a stronger integer lower bound
        (e.g. a grid size known to be at least 3).
        """
        s = self._program.add_parameter(name, positive=positive)
        if minimum is not None:
            self._program.context.assume_min(s, minimum)
        return s

    def pow2_param(self, name: str, exponent: str) -> tuple[Symbol, Symbol]:
        """Declare a power-of-two parameter ``name == 2**exponent``."""
        return self._program.add_pow2_parameter(name, exponent)

    def array(self, name: str, *dims: ExprLike) -> ArrayDecl:
        """Declare an array with the given extents."""
        return self._program.declare_array(name, *dims)

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseBuilder]:
        builder = PhaseBuilder(name, self._program)
        yield builder
        self._program.add_phase(builder.build())

    def build(self) -> Program:
        return self._program

    @property
    def context(self):
        return self._program.context
