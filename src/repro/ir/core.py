"""Loop-nest intermediate representation.

The unit of analysis in the paper is the *phase*: a DO loop nest — not
necessarily perfectly nested — with **at most one parallel loop**
(``doall``).  A :class:`Program` is a control-flow-ordered sequence of
phases over shared :class:`ArrayDecl`\\ s and :class:`Symbol` parameters.

Arrays are one-dimensional after linearisation (as "traditionally done by
conventional compilers", §2); multi-dimensional declarations are lowered
column-major by :mod:`repro.ir.normalize`.  Subscripts and loop bounds are
:class:`repro.symbolic.Expr` objects and may be non-affine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..symbolic import Context, Expr, ExprLike, LoopVar, Symbol, as_expr, sym

__all__ = [
    "AccessKind",
    "ArrayDecl",
    "Reference",
    "RefNode",
    "LoopNode",
    "Phase",
    "Program",
    "PhaseAccess",
]


class AccessKind(enum.Enum):
    """Read/write mode of a single array reference."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ArrayDecl:
    """A (linearised) shared array.

    ``dims`` keeps the original Fortran extents for pretty-printing and
    for the column-major linearisation; ``size`` is the linear length.
    """

    name: str
    size: Expr
    dims: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "size", as_expr(self.size))
        object.__setattr__(
            self, "dims", tuple(as_expr(d) for d in self.dims) or (self.size,)
        )

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Reference:
    """The s-th reference to an array inside a phase.

    ``subscript`` is the linear subscript expression φ_s over the phase's
    loop indices and the program parameters.
    """

    array: ArrayDecl
    subscript: Expr
    kind: AccessKind
    label: str = ""

    def __post_init__(self):
        object.__setattr__(self, "subscript", as_expr(self.subscript))

    def __str__(self) -> str:
        return f"{self.kind}:{self.array.name}({self.subscript})"


@dataclass
class RefNode:
    """A leaf of the loop tree holding one reference."""

    ref: Reference


@dataclass
class LoopNode:
    """A DO/DOALL loop with inclusive bounds and unit step (normalized).

    ``children`` mixes :class:`LoopNode` and :class:`RefNode` — that is
    what makes non-perfect nests representable.
    """

    index: Symbol
    lower: Expr
    upper: Expr
    parallel: bool = False
    children: list = field(default_factory=list)

    def __post_init__(self):
        self.lower = as_expr(self.lower)
        self.upper = as_expr(self.upper)

    @property
    def trip_count(self) -> Expr:
        """Number of iterations (inclusive bounds, unit stride)."""
        return self.upper - self.lower + 1

    def walk(self) -> Iterator[Union["LoopNode", RefNode]]:
        yield self
        for child in self.children:
            if isinstance(child, LoopNode):
                yield from child.walk()
            else:
                yield child


@dataclass(frozen=True)
class PhaseAccess:
    """A reference together with its enclosing loop chain (outer→inner)."""

    ref: Reference
    loops: tuple  # tuple[LoopNode, ...]

    @property
    def indices(self) -> tuple:
        return tuple(loop.index for loop in self.loops)


class Phase:
    """One loop nest with at most one level of parallelism.

    Parameters
    ----------
    name:
        phase identifier (e.g. ``"F3"`` or ``"CFFTZWORK"``).
    roots:
        top-level loops (usually one).
    privatizable:
        names of arrays that are privatizable in this phase — the ``P``
        attribute of §4.  May be supplied by the frontend (the paper gets
        it from Polaris) or inferred by :mod:`repro.locality.privatize`.
    """

    def __init__(
        self,
        name: str,
        roots: Optional[Sequence[LoopNode]] = None,
        privatizable: Optional[Iterable[str]] = None,
    ):
        self.name = name
        self.roots: list[LoopNode] = list(roots or [])
        self.privatizable: set[str] = set(privatizable or ())
        self._validate_parallelism()

    # -- structure queries -------------------------------------------------

    def _validate_parallelism(self) -> None:
        if len(self.parallel_loops()) > 1:
            raise ValueError(
                f"phase {self.name}: at most one parallel loop is allowed"
            )

    def parallel_loops(self) -> list[LoopNode]:
        return [
            node
            for root in self.roots
            for node in root.walk()
            if isinstance(node, LoopNode) and node.parallel
        ]

    @property
    def parallel_loop(self) -> Optional[LoopNode]:
        loops = self.parallel_loops()
        return loops[0] if loops else None

    def all_loops(self) -> list[LoopNode]:
        return [
            node
            for root in self.roots
            for node in root.walk()
            if isinstance(node, LoopNode)
        ]

    def accesses(self, array: Optional[Union[str, ArrayDecl]] = None) -> list[PhaseAccess]:
        """All references (optionally filtered by array) with loop chains."""
        name = None
        if array is not None:
            name = array if isinstance(array, str) else array.name
        found: list[PhaseAccess] = []

        def visit(node: LoopNode, chain: tuple) -> None:
            chain = chain + (node,)
            for child in node.children:
                if isinstance(child, LoopNode):
                    visit(child, chain)
                else:
                    if name is None or child.ref.array.name == name:
                        found.append(PhaseAccess(ref=child.ref, loops=chain))

        for root in self.roots:
            visit(root, ())
        return found

    def arrays(self) -> list[ArrayDecl]:
        """Distinct arrays referenced, in first-appearance order."""
        seen: dict[str, ArrayDecl] = {}
        for acc in self.accesses():
            seen.setdefault(acc.ref.array.name, acc.ref.array)
        return list(seen.values())

    def access_attribute(self, array: Union[str, ArrayDecl]) -> str:
        """The node attribute of §4: ``"R"``, ``"W"``, ``"R/W"`` or ``"P"``.

        A privatizable array is ``P`` regardless of its access modes.
        """
        name = array if isinstance(array, str) else array.name
        if name in self.privatizable:
            return "P"
        kinds = {acc.ref.kind for acc in self.accesses(name)}
        if not kinds:
            raise KeyError(f"array {name} not accessed in phase {self.name}")
        if kinds == {AccessKind.READ}:
            return "R"
        if kinds == {AccessKind.WRITE}:
            return "W"
        return "R/W"

    def loop_context(self, base: Optional[Context] = None) -> Context:
        """Extend ``base`` with this phase's loop-variable ranges.

        For non-perfect nests we conservatively push every loop of the
        phase, outermost-first (the bound-elimination order only needs
        inner-before-outer dependencies, which nesting guarantees).
        """
        ctx = base.copy() if base is not None else Context()
        for loop in self.all_loops():
            ctx.push_loop(LoopVar(loop.index, loop.lower, loop.upper))
        return ctx

    def __str__(self) -> str:
        return f"Phase({self.name})"

    __repr__ = __str__


class Program:
    """A control-flow-ordered collection of phases.

    ``context`` carries the parameter assumptions (positivity, power-of-
    two facts) shared by all phases.  The LCG treats ``phases`` as the
    (linear) control-flow order; cycles induced by outer sequential loops
    around groups of phases are expressed via ``repeat`` markers on the
    program (see :mod:`repro.locality.lcg`).
    """

    def __init__(
        self,
        name: str,
        context: Optional[Context] = None,
    ):
        self.name = name
        self.context = context or Context()
        self.phases: list[Phase] = []
        self.arrays: dict[str, ArrayDecl] = {}
        self.parameters: dict[str, Symbol] = {}

    def add_parameter(self, name: str, *, positive: bool = True) -> Symbol:
        s = sym(name)
        self.parameters[name] = s
        if positive:
            self.context.assume_positive(s)
        return s

    def add_pow2_parameter(self, name: str, exponent_name: str) -> tuple[Symbol, Symbol]:
        """Declare ``name == 2**exponent_name`` (both returned)."""
        s = sym(name)
        e = sym(exponent_name)
        self.parameters[name] = s
        self.parameters[exponent_name] = e
        self.context.assume_pow2(s, e)
        return s, e

    def declare_array(self, name: str, *dims: ExprLike) -> ArrayDecl:
        """Declare a (possibly multi-dimensional) array; linear size is
        the product of extents."""
        extents = [as_expr(d) for d in dims]
        size: Expr = as_expr(1)
        for d in extents:
            size = size * d
        decl = ArrayDecl(name=name, size=size, dims=tuple(extents))
        self.arrays[name] = decl
        return decl

    def add_phase(self, phase: Phase) -> Phase:
        self.phases.append(phase)
        return phase

    def phase(self, name: str) -> Phase:
        for ph in self.phases:
            if ph.name == name:
                return ph
        raise KeyError(f"no phase named {name}")

    def arrays_in_use(self) -> list[ArrayDecl]:
        seen: dict[str, ArrayDecl] = {}
        for ph in self.phases:
            for arr in ph.arrays():
                seen.setdefault(arr.name, arr)
        return list(seen.values())

    def __str__(self) -> str:
        return f"Program({self.name}, {len(self.phases)} phases)"

    __repr__ = __str__
