"""repro — Access-Descriptor Based Locality Analysis for DSM Multiprocessors.

A from-scratch reproduction of Navarro, Asenjo, Zapata & Padua (ICPP'99):
LMAD-style access descriptors, phase/iteration descriptors, the
Locality-Communication Graph, the iteration/data-distribution integer
program, and a deterministic DSM machine simulator that validates the
whole pipeline by measurement.

Quickstart::

    from repro import AnalysisOptions, analyze
    from repro.codes import build_tfft2
    from repro.codes.tfft2 import REFERENCE_ENV

    opts = AnalysisOptions(engine="parallel", trace=True, metrics=True)
    result = analyze(build_tfft2(), env=REFERENCE_ENV, H=8, options=opts)
    print(result.lcg.render())
    print(result.plan.phase_chunks)
    print(result.report.summary())
    print(result.trace.render())      # flame-style span tree
    print(result.metrics["counters"]) # cache/prover/engine counters

Long-lived serving (coalescing, shared warm cache, backpressure) lives
in :mod:`repro.service`::

    python -m repro serve --port 8377 --snapshot lcg.pkl
    python -m repro query --code tfft2 --H 8 --port 8377
"""

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from .ir import Program
from .obs import Collector
from .options import AnalysisOptions

__version__ = "1.2.0"


@dataclass
class AnalysisResult:
    """End-to-end pipeline output: LCG, constraints, plan, execution.

    ``trace`` is the :class:`repro.obs.Collector` holding the span tree
    when tracing was requested (``trace.render()`` / ``trace.to_json()``)
    and ``metrics`` the counter/gauge snapshot when metrics were; both
    are ``None`` otherwise.  ``env`` and ``H`` echo the binding the
    pipeline ran under, which makes the result self-describing:
    :meth:`to_document` needs no extra arguments.
    """

    program: Program
    lcg: object
    constraints: object
    plan: object
    report: object
    trace: object = None
    metrics: Optional[dict] = None
    env: Mapping[str, int] = None
    H: int = 0

    def to_document(self) -> dict:
        """The versioned wire document (:mod:`repro.document`).

        The single producer of the result serialization: the CLI's
        ``--json``, the service's ``POST /analyze`` responses and job
        results, and the checker's JSON reports all call this, so the
        wire format cannot fork.  Serialize with
        :func:`repro.document.dumps_canonical` for the canonical bytes.
        """
        from .document import result_document

        return result_document(self)


def _fold_legacy(options, parallel, cache):
    """Fold analyze()'s legacy ``parallel``/``cache`` args into options."""
    if options is None:
        options = AnalysisOptions()
    elif isinstance(options, str):
        options = AnalysisOptions.from_spec(options)
    if parallel is not None and options.engine is None:
        options = replace(
            options, engine="parallel" if parallel else "serial"
        )
    if cache is not None and options.analysis_cache is None:
        options = replace(options, analysis_cache=cache)
    return options


def analyze(
    program: Program,
    env: Mapping[str, int],
    H: int,
    back_edges: Optional[list] = None,
    execute: bool = True,
    parallel: Optional[bool] = None,
    cache=None,
    options: Optional[AnalysisOptions] = None,
    collector: Optional[Collector] = None,
    ilp_memo=None,
) -> AnalysisResult:
    """Run the full paper pipeline on a program.

    1. build + label the LCG (descriptors, Theorems 1–2, Table 1),
    2. extract the Table-2 constraint system,
    3. solve the Eq. 7 integer program for CYCLIC(p) chunkings,
    4. (optionally) execute on the DSM simulator under the derived
       iteration/data distribution and report measured locality.

    ``options`` is an :class:`AnalysisOptions` (or a ``KEY=VALUE,...``
    spec string) scoping every engine knob to this call; fields left at
    ``None`` inherit the process defaults the deprecated ``set_*`` shims
    still move.  ``collector`` supplies an external
    :class:`repro.obs.Collector` to record into (e.g. to wrap the parse
    stage too); otherwise one is created when the options ask for
    tracing or metrics.  The legacy ``parallel``/``cache`` arguments
    keep working and fold into the options.

    ``ilp_memo`` is a :class:`repro.distribution.TermMemo` a session or
    sweep carries across calls so the Eq. 7 enumeration reuses
    component argmins; it never changes the result (memo hits are
    bit-identical to evaluating), so it stays out of ``options`` — it
    is pure acceleration state, not configuration.
    """
    from .locality import build_lcg
    from .locality.engine import AnalysisCache
    from .locality.intra import check_intra_phase
    from .distribution import T3D, extract_constraints, solve_enumerative
    from .dsm import execute_with_plan
    from .obs import obs_span
    from .plan import (
        PlanCache,
        PlanRecorder,
        get_plan_cache,
        install_plan,
        plan_key,
    )
    from .symbolic.compile import compile_stats

    opts = _fold_legacy(options, parallel, cache)

    obs = collector
    if obs is None and (opts.trace or opts.metrics):
        obs = Collector(trace=opts.trace, metrics=opts.metrics)

    # A path-valued cache option means: warm-start from the pickle (an
    # unreadable/missing file loads empty) and save back after the build.
    cache_arg = opts.analysis_cache
    cache_path = None
    if cache_arg is not None and not isinstance(cache_arg, bool):
        if not (hasattr(cache_arg, "edges") and hasattr(cache_arg, "intra")):
            cache_path = cache_arg
            cache_arg = AnalysisCache.load(cache_path, obs=obs)

    # Compiled analysis plans: a path-valued plan_cache loads the
    # persistent bundle (memo banks install immediately — they speed
    # every program); plan=True alone uses the in-memory bundle.  A
    # known (program, binding) installs its plan and replays; an
    # unknown one records this build into a fresh plan.
    plan_enabled = opts.plan
    plan_bundle = None
    plan_path = None
    if opts.plan_cache is not None:
        if hasattr(opts.plan_cache, "plans"):
            plan_bundle = opts.plan_cache
        else:
            plan_path = opts.plan_cache
            plan_bundle = PlanCache.open(plan_path, obs=obs)
        if plan_enabled is None:
            plan_enabled = True
    elif plan_enabled:
        plan_bundle = get_plan_cache()

    ctx = program.context
    prev_obs = getattr(ctx, "obs", None)
    prev_refutation = getattr(ctx, "refutation", None)
    ctx.obs = obs
    if opts.refutation is not None:
        ctx.refutation = opts.refutation

    exec_plan = None
    recorder = None
    if plan_enabled and plan_bundle is not None:
        found = plan_bundle.get(plan_key(program, env, H, back_edges))
        if found is not None and install_plan(
            found, obs=obs, cache=cache_arg
        ):
            exec_plan = found
            plan_bundle.bump("installed")
        else:
            if found is not None:
                plan_bundle.bump("rejected")
            recorder = PlanRecorder()

    compile_before = compile_stats()
    try:
        with obs_span(obs, "analyze", program=program.name, H=H):
            if obs is not None:
                # Serial Theorem-1 pre-pass: memoizes every (phase,
                # array) verdict up front so edge spans are leaves in
                # both serial and parallel dispatch — the span tree is
                # structurally identical across engines.
                with obs_span(obs, "descriptors"):
                    for phase in program.phases:
                        arrays = sorted(
                            phase.arrays(), key=lambda a: a.name
                        )
                        for array in arrays:
                            name = f"theorem1:{phase.name}:{array.name}"
                            with obs_span(obs, name) as sp:
                                intra = check_intra_phase(phase, array, ctx)
                                sp.set(holds=intra.holds, case=intra.case)
            lcg = build_lcg(
                program,
                env=env,
                H_value=H,
                back_edges=back_edges,
                parallel=(
                    None if opts.engine is None
                    else opts.engine == "parallel"
                ),
                cache=cache_arg,
                workers=opts.parallel_workers,
                plan=exec_plan,
            )
            if recorder is not None:
                compiled_plan = recorder.finish(
                    program,
                    env=env,
                    H_value=H,
                    back_edges=back_edges,
                    cache=cache_arg,
                )
                recorder = None
                if compiled_plan is not None:
                    plan_bundle.put(compiled_plan)
                    if obs is not None:
                        obs.count("plan.compiled")
            if plan_path is not None:
                plan_bundle.capture_banks()
                plan_bundle.save(plan_path)
            if cache_path is not None:
                cache_arg.save(cache_path)
            with obs_span(obs, "constraints"):
                constraints = extract_constraints(lcg)
            machine = T3D
            if (
                opts.machine_alpha is not None
                or opts.machine_beta is not None
            ):
                machine = replace(
                    T3D,
                    **{
                        k: v
                        for k, v in (
                            ("alpha", opts.machine_alpha),
                            ("beta", opts.machine_beta),
                        )
                        if v is not None
                    },
                )
            bounds = None
            if opts.chunk_bounds is not None:
                from .options import parse_chunk_bounds

                bounds = parse_chunk_bounds(opts.chunk_bounds)
            with obs_span(obs, "ilp") as sp:
                plan = solve_enumerative(
                    constraints,
                    env,
                    H=H,
                    machine=machine,
                    chunk_bounds=bounds,
                    memo=ilp_memo,
                )
                sp.set(
                    components=len(plan.components),
                    relaxed=len(plan.relaxed_edges),
                )
            report = (
                execute_with_plan(
                    program,
                    lcg,
                    plan,
                    env,
                    H,
                    fast_path=opts.dsm_fast_path,
                )
                if execute
                else None
            )
        if obs is not None and obs.metrics:
            delta = compile_stats()
            obs.count(
                "compile.compiled",
                delta["misses"] - compile_before["misses"],
            )
            obs.count(
                "compile.reused", delta["hits"] - compile_before["hits"]
            )
    finally:
        if recorder is not None:
            recorder.abandon()
        ctx.obs = prev_obs
        if opts.refutation is not None:
            ctx.refutation = prev_refutation

    return AnalysisResult(
        program=program,
        lcg=lcg,
        constraints=constraints,
        plan=plan,
        report=report,
        env=dict(env),
        H=int(H),
        trace=obs if (obs is not None and obs.trace) else None,
        metrics=(
            obs.metrics_snapshot()
            if (obs is not None and obs.metrics)
            else None
        ),
    )


__all__ = [
    "AnalysisOptions",
    "AnalysisResult",
    "Collector",
    "analyze",
    "__version__",
]
