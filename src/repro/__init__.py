"""repro — Access-Descriptor Based Locality Analysis for DSM Multiprocessors.

A from-scratch reproduction of Navarro, Asenjo, Zapata & Padua (ICPP'99):
LMAD-style access descriptors, phase/iteration descriptors, the
Locality-Communication Graph, the iteration/data-distribution integer
program, and a deterministic DSM machine simulator that validates the
whole pipeline by measurement.

Quickstart::

    from repro import analyze
    from repro.codes import build_tfft2
    from repro.codes.tfft2 import REFERENCE_ENV

    result = analyze(build_tfft2(), env=REFERENCE_ENV, H=8)
    print(result.lcg.render())
    print(result.plan.phase_chunks)
    print(result.report.summary())
"""

from dataclasses import dataclass
from typing import Mapping, Optional

from .ir import Program

__version__ = "1.0.0"


@dataclass
class AnalysisResult:
    """End-to-end pipeline output: LCG, constraints, plan, execution."""

    program: Program
    lcg: object
    constraints: object
    plan: object
    report: object


def analyze(
    program: Program,
    env: Mapping[str, int],
    H: int,
    back_edges: Optional[list] = None,
    execute: bool = True,
    parallel: Optional[bool] = None,
    cache=None,
) -> AnalysisResult:
    """Run the full paper pipeline on a program.

    1. build + label the LCG (descriptors, Theorems 1–2, Table 1),
    2. extract the Table-2 constraint system,
    3. solve the Eq. 7 integer program for CYCLIC(p) chunkings,
    4. (optionally) execute on the DSM simulator under the derived
       iteration/data distribution and report measured locality.

    ``parallel``/``cache`` forward to :func:`repro.locality.build_lcg`
    (process-pool edge fan-out and the fingerprint analysis cache).
    """
    from .locality import build_lcg
    from .distribution import extract_constraints, solve_enumerative
    from .dsm import execute_with_plan

    lcg = build_lcg(
        program,
        env=env,
        H_value=H,
        back_edges=back_edges,
        parallel=parallel,
        cache=cache,
    )
    constraints = extract_constraints(lcg)
    plan = solve_enumerative(constraints, env, H=H)
    report = (
        execute_with_plan(program, lcg, plan, env, H) if execute else None
    )
    return AnalysisResult(
        program=program,
        lcg=lcg,
        constraints=constraints,
        plan=plan,
        report=report,
    )


__all__ = ["AnalysisResult", "analyze", "__version__"]
