"""Atomic snapshot writes: write-temp + fsync + rename.

Every on-disk cache in the repo (the :class:`AnalysisCache` pickle, the
plan/compile/refutation bundle of :mod:`repro.plan`) is written through
this helper so a reader can never observe a half-written file: the
payload lands in a temporary sibling first, is fsynced, and then
atomically renamed over the target.  A SIGTERM mid-write leaves either
the previous snapshot or the new one — both loadable — never a
truncated pickle.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=".snapshot-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
