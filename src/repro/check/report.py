"""Structured mismatch reporting for the differential checkers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CheckReport", "Mismatch"]


@dataclass(frozen=True)
class Mismatch:
    """One verified disagreement between an oracle and the analysis.

    ``kind`` is a dotted family name (``descriptor.region``,
    ``descriptor.iteration``, ``descriptor.symmetry``, ``lcg.label``,
    ``lcg.l_edge_traffic``, ``lcg.c_edge_comm``) so reports can be
    grouped and counted; ``detail`` is the human-readable finding;
    ``missing``/``extra`` carry address-set evidence where applicable
    (up to a few sample addresses each, plus totals).
    """

    kind: str
    program: str
    phase: str
    array: str
    detail: str
    missing: int = 0
    extra: int = 0
    samples: tuple = ()

    def __str__(self) -> str:
        where = f"{self.program}/{self.phase}/{self.array}"
        evidence = ""
        if self.missing or self.extra:
            evidence = f" [missing={self.missing} extra={self.extra}]"
        if self.samples:
            evidence += f" e.g. {list(self.samples)}"
        return f"{self.kind}: {where}: {self.detail}{evidence}"


@dataclass
class CheckReport:
    """Everything one differential run found for one (program, H)."""

    program: str
    H: int
    env: dict
    mismatches: list = field(default_factory=list)  # list[Mismatch]
    checked: dict = field(default_factory=dict)  # family -> comparisons run
    notes: list = field(default_factory=list)  # non-failing observations

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def merge_checked(self, family: str, n: int = 1) -> None:
        self.checked[family] = self.checked.get(family, 0) + n

    def render(self) -> str:
        head = (
            f"{self.program} @ H={self.H}: "
            + ("OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)")
            + " ("
            + ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items()))
            + ")"
        )
        lines = [head]
        lines.extend(f"  {m}" for m in self.mismatches)
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "H": self.H,
            "env": dict(self.env),
            "ok": self.ok,
            "checked": dict(self.checked),
            "notes": list(self.notes),
            "mismatches": [
                {
                    "kind": m.kind,
                    "phase": m.phase,
                    "array": m.array,
                    "detail": m.detail,
                    "missing": m.missing,
                    "extra": m.extra,
                    "samples": [int(s) for s in m.samples],
                }
                for m in self.mismatches
            ],
        }
