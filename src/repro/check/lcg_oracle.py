"""LCG oracle — differential validation of edge labels under execution.

Theorems 1–2 promise that an ``L`` edge costs nothing at runtime and a
``C`` edge costs exactly what Table 1 / Eq. 7 predict.  This module
runs the DSM simulator under the chosen CYCLIC(p) distribution and
checks those promises against the observed traffic.

Checks per LCG edge ``(F_k, F_g, X)``:

``lcg.label``
    Re-derive the Table 1 label from the edge's recorded attributes
    (``attr_k``/``attr_g``, overlap, balanced feasibility, intra-phase
    verdict) via :func:`repro.locality.table1.classify_edge` and demand
    it equals the label the engine assigned.

``lcg.l_edge_traffic``
    A live (unrelaxed, unfolded) ``L`` edge must carry no communication
    plan, and — unless an endpoint is replicated — every address reused
    across the two phases must have the same owner under both layouts.

``lcg.c_edge_comm``
    A comm-bearing edge (``C``, relaxed, or layout-fold) must have a
    plan unless an endpoint is replicated.  A ``global`` plan's volume
    must equal the recomputed owner-changing element count and respect
    the Eq. 7 envelope ``(|region|, H·(H−1))``; a ``frontier`` plan
    must ride a claimed overlap and move exactly ``2·(H−1)`` messages
    of Δs elements each (volume ``2·(H−1)·Δs``).

``lcg.l_edge_traffic`` (residual accesses)
    On phases promised local by a live ``L`` edge, any access the
    simulator still counts remote must sit within the frontier-
    misalignment halo of the iteration's schedule block — within
    ``ceil(Δs / chunk)`` chunks for a claimed overlap distance Δs
    (at least one chunk) — never arbitrarily far away.  (Checked for
    plain ascending block-cyclic layouts, where chunk adjacency is
    well-defined.)
"""

from __future__ import annotations

import numpy as np

from ..distribution.costs import edge_volume
from ..distribution.schedule import (
    BlockCyclicLayout,
    CyclicSchedule,
    ReplicatedLayout,
)
from ..dsm.executor import _ev_int, chain_layouts
from ..ir import enumerate_phase
from ..ir.interp import phase_access_set
from ..locality.balanced import Feasibility
from ..locality.table1 import classify_edge
from .report import CheckReport, Mismatch

__all__ = ["check_lcg"]


def _expected_label(edge) -> str:
    if edge.attr_k == "P" or edge.attr_g == "P":
        return classify_edge(edge.attr_k, edge.attr_g, edge.intra_k.has_overlap, True)
    if edge.balanced is None:
        return "C"
    balanced_ok = edge.feasibility is Feasibility.FEASIBLE
    label = classify_edge(
        edge.attr_k, edge.attr_g, edge.intra_k.has_overlap, balanced_ok
    )
    if label == "L" and not (edge.intra_k.holds and edge.intra_g.holds):
        label = "C"
    return label


def check_lcg(program, env, H, *, back_edges=(), program_name=None, result=None, obs=None) -> CheckReport:
    """Differentially validate every LCG edge of ``program`` at ``H``.

    ``result`` may carry a precomputed :func:`repro.analyze` result for
    the same ``(program, env, H, back_edges)``; otherwise the analysis
    runs here.
    """
    from .. import analyze  # deferred: repro package imports repro.check.faults

    name = program_name or getattr(program, "name", "<program>")
    report = CheckReport(program=name, H=H, env=dict(env))
    if result is None:
        result = analyze(program, env=env, H=H, back_edges=back_edges)
    lcg, plan, exec_report = result.lcg, result.plan, result.report

    layouts = chain_layouts(lcg, plan, env, H)
    folded = {tuple(t) for t in layouts.pop("__fold_edges__", [])}
    relaxed = {tuple(t) for t in getattr(plan, "relaxed_edges", ())}
    plans = {(c.edge[0], c.edge[1], c.array): c for c in exec_report.comms}

    # (phase, array) pairs a live L edge promises local, mapped to the
    # widest claimed overlap distance Δs (the halo the residual check
    # must tolerate); None when a claim exists but cannot be evaluated
    # under the env (iteration-dependent Δs) — those pairs are skipped.
    promised: dict = {}
    for array in lcg.arrays():
        for edge in lcg.edges(array):
            key = (edge.phase_k, edge.phase_g, array)
            _check_edge(
                report, program, edge, key, layouts, relaxed, folded, plans,
                env, H, promised, obs=obs,
            )
    _check_residual_remotes(
        report, program, plan, layouts, promised, env, H, obs=obs
    )
    return report


def _check_edge(report, program, edge, key, layouts, relaxed, folded, plans,
                env, H, promised, *, obs=None) -> None:
    phase_k, phase_g, array = key
    where = dict(program=report.program, phase=f"{phase_k}->{phase_g}", array=array)

    report.merge_checked("lcg.label")
    if obs is not None:
        obs.count("check.lcg.label")
    expected = _expected_label(edge)
    if expected != edge.label:
        report.mismatches.append(
            Mismatch(
                kind="lcg.label",
                detail=f"Table 1 re-derivation gives {expected!r}, engine assigned {edge.label!r}",
                **where,
            )
        )

    layout_k = layouts[(phase_k, array)]
    layout_g = layouts[(phase_g, array)]
    replicated = isinstance(layout_k, ReplicatedLayout) or isinstance(
        layout_g, ReplicatedLayout
    )
    comm_bearing = edge.label == "C" or key in relaxed or key in folded

    if not comm_bearing:
        for side, intra in ((phase_k, edge.intra_k), (phase_g, edge.intra_g)):
            halo = promised.get((side, array), 0)
            if halo is not None:
                try:
                    if intra.symmetry is not None:
                        for (_, _, dist) in intra.symmetry.overlap:
                            halo = max(halo, _ev_int(dist, env))
                    if intra.iteration_descriptor is not None:
                        # One iteration's reach past its own block: the
                        # spread of the ID rows at a fixed iteration —
                        # from the lowest row base to the highest row
                        # end (e.g. D(i) and D(i+2) are two rows whose
                        # bases sit 2 apart) — bounds the halo even when
                        # no overlap pair was claimed.
                        lo = hi = None
                        for row in intra.iteration_descriptor.rows:
                            b = _ev_int(row.base0, env)
                            e = b + _ev_int(row.extent, env)
                            lo = b if lo is None else min(lo, b)
                            hi = e if hi is None else max(hi, e)
                        if lo is not None:
                            halo = max(halo, hi - lo)
                except (KeyError, ValueError):
                    halo = None
            promised[(side, array)] = halo
        report.merge_checked("lcg.l_edge_traffic")
        if obs is not None:
            obs.count("check.lcg.l_edge")
        if key in plans:
            report.mismatches.append(
                Mismatch(
                    kind="lcg.l_edge_traffic",
                    detail="L edge carries a communication plan",
                    **where,
                )
            )
        if not replicated:
            reuse = np.intersect1d(
                phase_access_set(program.phase(phase_k), env, array),
                phase_access_set(program.phase(phase_g), env, array),
            )
            if reuse.size:
                same = np.asarray(layout_k.owner(reuse)) == np.asarray(
                    layout_g.owner(reuse)
                )
                if not same.all():
                    moved = reuse[~same]
                    report.mismatches.append(
                        Mismatch(
                            kind="lcg.l_edge_traffic",
                            detail=f"{moved.size} reused addresses change owner across an L edge",
                            missing=int(moved.size),
                            samples=tuple(int(a) for a in moved[:4]),
                            **where,
                        )
                    )
        return

    report.merge_checked("lcg.c_edge_comm")
    if obs is not None:
        obs.count("check.lcg.c_edge")
    comm = plans.get(key)
    if replicated:
        if comm is not None:
            report.mismatches.append(
                Mismatch(
                    kind="lcg.c_edge_comm",
                    detail="communication planned despite a replicated endpoint",
                    **where,
                )
            )
        return
    if comm is None:
        report.mismatches.append(
            Mismatch(
                kind="lcg.c_edge_comm",
                detail="comm-bearing edge has no communication plan",
                **where,
            )
        )
        return

    region = phase_access_set(program.phase(phase_g), env, array)
    if comm.pattern == "global":
        moved = int(
            (np.asarray(layout_k.owner(region)) != np.asarray(layout_g.owner(region))).sum()
        )
        if comm.volume != moved:
            report.mismatches.append(
                Mismatch(
                    kind="lcg.c_edge_comm",
                    detail=f"global redistribution volume {comm.volume} != recomputed moved count {moved}",
                    **where,
                )
            )
        eq7_volume, eq7_messages = edge_volume(region.size, None, H)
        if comm.volume > eq7_volume or comm.messages > eq7_messages:
            report.mismatches.append(
                Mismatch(
                    kind="lcg.c_edge_comm",
                    detail=(
                        f"observed ({comm.volume} elems, {comm.messages} msgs) exceeds "
                        f"Eq. 7 envelope ({eq7_volume}, {eq7_messages})"
                    ),
                    **where,
                )
            )
    else:  # frontier
        if not edge.intra_k.has_overlap:
            report.mismatches.append(
                Mismatch(
                    kind="lcg.c_edge_comm",
                    detail="frontier update on an edge without claimed overlap",
                    **where,
                )
            )
            return
        delta_s = _ev_int(edge.intra_k.symmetry.overlap[0][2], env)
        eq7_volume, eq7_messages = edge_volume(region.size, delta_s, H)
        bad_shape = (
            comm.messages != eq7_messages
            or comm.volume != eq7_volume
            or any(put.elements != delta_s for put in comm.puts)
        )
        if bad_shape:
            report.mismatches.append(
                Mismatch(
                    kind="lcg.c_edge_comm",
                    detail=(
                        f"frontier shape ({comm.volume} elems, {comm.messages} msgs) != "
                        f"Eq. 7 inputs (Δs={delta_s}: {eq7_volume} elems, {eq7_messages} msgs)"
                    ),
                    **where,
                )
            )


def _check_residual_remotes(report, program, plan, layouts, promised, env, H, *, obs=None):
    """Remote accesses on L-promised pairs must stay within the halo."""
    for phase in program.phases:
        arrays = [
            a.name
            for a in phase.arrays()
            if promised.get((phase.name, a.name)) is not None
        ]
        if not arrays:
            continue
        par = phase.parallel_loop
        trip = _ev_int(par.trip_count, env) if par is not None else 1
        chunk = plan.phase_chunks.get(phase.name, 1)
        schedule = CyclicSchedule(trip=trip, p=chunk, H=H)
        lo = _ev_int(par.lower, env) if par is not None else 0
        for accesses in enumerate_phase(phase, env):
            if accesses.iteration is None:
                continue
            idx = accesses.iteration - lo
            pe = int(np.asarray(schedule.owner(idx)))
            block = idx // chunk
            for trace in accesses.traces:
                if trace.array not in arrays:
                    continue
                layout = layouts.get((phase.name, trace.array))
                if not isinstance(layout, BlockCyclicLayout) or getattr(
                    layout, "reversed_", False
                ):
                    continue
                remote = np.asarray(layout.owner(trace.addresses)) != pe
                if not remote.any():
                    continue
                report.merge_checked("lcg.l_edge_traffic")
                if obs is not None:
                    obs.count("check.lcg.residual")
                chunk_index = (
                    np.asarray(trace.addresses)[remote] - layout.origin
                ) // layout.chunk
                drift = int(np.abs(chunk_index - block).max())
                halo = promised[(phase.name, trace.array)]
                allowed = max(1, -(-halo // layout.chunk))
                if drift > allowed:
                    far = np.asarray(trace.addresses)[remote][
                        np.abs(chunk_index - block) > allowed
                    ]
                    report.mismatches.append(
                        Mismatch(
                            kind="lcg.l_edge_traffic",
                            program=report.program,
                            phase=phase.name,
                            array=trace.array,
                            detail=(
                                f"remote access {drift} chunks from iteration "
                                f"{accesses.iteration}'s block — beyond the "
                                f"frontier halo ({allowed} chunk(s) for "
                                f"Δs={halo})"
                            ),
                            extra=int(far.size),
                            samples=tuple(int(a) for a in far[:4]),
                        )
                    )
