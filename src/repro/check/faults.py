"""Fault injection — controlled failure points for the degradation paths.

Every accelerator stage of the pipeline owns a *fallback*: the parallel
engine falls back to serial dispatch, a corrupt cache pickle loads
empty, a timed-out refutation declines into the full proof search, an
uncompilable expression is interpreted.  This module provides the seams
that let tests (and ``python -m repro check --faults ...``) force each
failure deterministically and prove the fallback yields a correct
result *and* increments its obs counter — without which the fallbacks
are dead code trusted on faith.

Usage::

    from repro.check import faults

    with faults.inject("worker_crash") as armed:
        result = analyze(...)          # pool breaks, serial fallback runs
    assert armed["worker_crash"] > 0   # the seam was actually reached

Arming is process-global but records the arming PID, so a fault marked
``subprocess_only`` (``worker_crash``) fires only in forked pool
workers, never in the parent's serial fallback — the fallback must
stay healthy for the degradation contract to be testable.

The seams themselves live in product code and cost one dict lookup on
an (almost always) empty dict when nothing is armed:

=================  ======================================  =======================
fault              seam                                     degraded path / counter
=================  ======================================  =======================
``worker_crash``   ``locality.engine._edge_worker``         serial re-dispatch;
                                                            ``engine.pool_fallback``
``corrupt_cache``  ``locality.engine.AnalysisCache.load``   cold (empty) cache;
                                                            ``analysis_cache.load_failed``
``prover_timeout`` ``symbolic.refute.refute_nonneg``        full proof search;
                                                            ``prover.timeouts``
``compile_failure`` ``symbolic.compile.compile_expr``       exact interpretation;
                                                            ``dsm.fast_path.interp``
``plan_corrupt``   ``plan.cache.PlanCache.load``            fresh cold build;
                                                            ``plan.load_failed``
``plan_stale``     ``plan.cache.PlanCache.load``            fresh cold build
                                                            (version mismatch);
                                                            ``plan.load_failed``
=================  ======================================  =======================
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Tuple

__all__ = ["FAULTS", "fire", "inject", "is_armed", "parse_fault_list"]

#: Every injectable failure point, in degradation-matrix order.
FAULTS: Tuple[str, ...] = (
    "worker_crash",
    "corrupt_cache",
    "prover_timeout",
    "compile_failure",
    "plan_corrupt",
    "plan_stale",
)

#: Faults that only fire in forked subprocesses (the parent runs the
#: fallback and must stay healthy).
_SUBPROCESS_ONLY = frozenset({"worker_crash"})

#: name -> [arming_pid, fire_count].  Plain dict mutation keeps the
#: disarmed fast path to a single ``.get`` on an empty dict.
_ARMED: dict = {}


def parse_fault_list(text: str) -> Tuple[str, ...]:
    """Parse a ``--faults name,name`` CLI value, validating names."""
    names = tuple(n.strip() for n in (text or "").split(",") if n.strip())
    for name in names:
        if name not in FAULTS:
            raise ValueError(
                f"unknown fault {name!r}; known faults: {', '.join(FAULTS)}"
            )
    return names


def is_armed(name: str) -> bool:
    return name in _ARMED


def fire(name: str) -> bool:
    """True when the named fault should trigger at this seam, counting it.

    A ``subprocess_only`` fault reports False in the process that armed
    it (its count then reflects subprocess firings only, which fork
    children write into their own copy of ``_ARMED`` — the parent-side
    count stays 0 and tests assert on the *fallback counter* instead).
    """
    entry = _ARMED.get(name)
    if entry is None:
        return False
    if name in _SUBPROCESS_ONLY and os.getpid() == entry[0]:
        return False
    entry[1] += 1
    return True


def fire_count(name: str) -> int:
    """Firings recorded in *this* process since arming (0 if disarmed)."""
    entry = _ARMED.get(name)
    return entry[1] if entry is not None else 0


@contextmanager
def inject(*names: str) -> Iterator[dict]:
    """Arm the named faults for the duration of the block.

    Yields a live mapping ``name -> fire count`` (this process's view)
    so tests can assert the seam was reached.  Nested/overlapping
    injections of the same fault are rejected — a fault's count would
    be ambiguous.
    """
    pid = os.getpid()
    for name in names:
        if name not in FAULTS:
            raise ValueError(
                f"unknown fault {name!r}; known faults: {', '.join(FAULTS)}"
            )
        if name in _ARMED:
            raise ValueError(f"fault {name!r} is already armed")
    for name in names:
        _ARMED[name] = [pid, 0]

    class _View(dict):
        def __getitem__(self, key):
            return fire_count(key)

    try:
        yield _View({n: 0 for n in names})
    finally:
        for name in names:
            _ARMED.pop(name, None)
