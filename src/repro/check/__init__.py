"""``repro.check`` — differential soundness oracles + fault injection.

The package intentionally keeps its import-time footprint to the fault
seams and the report types: product modules (the engine, the refuter,
the compiler) import :mod:`repro.check.faults` for their injection
seams, while the oracles import the full pipeline — eager oracle
imports here would be a cycle.  The oracle entry points resolve lazily.
"""

from __future__ import annotations

from . import faults
from .report import CheckReport, Mismatch

__all__ = [
    "CheckReport",
    "Mismatch",
    "check_descriptors",
    "check_exec_tier",
    "check_lcg",
    "check_session",
    "env_for",
    "faults",
    "main_check",
    "run_checks",
]

_LAZY = {
    "check_descriptors": "descriptor_oracle",
    "descriptor_region": "descriptor_oracle",
    "check_exec_tier": "exec_oracle",
    "check_lcg": "lcg_oracle",
    "check_session": "session_oracle",
    "env_for": "cli",
    "main_check": "cli",
    "run_checks": "cli",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
