"""Execution-tier oracle — symbolic accounting ≡ wide enumeration.

The ``"symbolic"`` executor tier (:mod:`repro.dsm.closed_form`) promises
*byte-identical* results to the ``"wide"`` enumeration tier: the same
per-PE local/remote/iteration counts for every phase and the same
aggregated communication plans (pattern, put order, sources,
destinations, element counts) for every edge.  This oracle runs both
tiers over the same program and compares everything, so any drift in
the residue-class arithmetic — an off-by-one in a floor-sum, a wrong
block boundary, a mis-clipped layout segment — surfaces as a
:class:`~repro.check.report.Mismatch` instead of silently skewing the
paper's Table 2/3 numbers.

Checks per (program, H):

``exec.static_counts`` / ``exec.plan_counts``
    Per-phase ``local``/``remote``/``iterations`` arrays must match
    element-for-element between tiers, for the naive BLOCK baseline
    (``execute_static``) and the LCG-driven plan execution
    (``execute_with_plan``).

``exec.plan_comms``
    Every communication plan must agree on array, edge, pattern, and
    the exact put list (lexicographic (source, dest) order with
    element counts) — the aggregation the cost model bills.

Fallbacks are part of the contract: the symbolic run is instrumented
with its own collector, and the observed ``dsm.fast_path.symbolic`` /
``dsm.symbolic.fallback*`` counters are recorded as report notes so a
sweep can prove every fallback stayed visible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs import Collector
from .report import CheckReport, Mismatch

__all__ = ["check_exec_tier"]

#: Counter prefixes copied into the report notes after the symbolic run.
_OBSERVED = ("dsm.fast_path.", "dsm.symbolic.")


def _compare_phases(report, kind, ref, sym, obs=None) -> None:
    if len(ref.phases) != len(sym.phases):
        report.mismatches.append(
            Mismatch(
                kind=kind,
                program=report.program,
                phase="*",
                array="*",
                detail=(
                    f"tier reports {len(sym.phases)} phases, "
                    f"wide reports {len(ref.phases)}"
                ),
            )
        )
        return
    for pw, ps in zip(ref.phases, sym.phases):
        report.merge_checked(kind)
        if obs is not None:
            obs.count(f"check.{kind}")
        for field in ("local", "remote", "iterations"):
            a = np.asarray(getattr(pw, field))
            b = np.asarray(getattr(ps, field))
            if a.shape == b.shape and np.array_equal(a, b):
                continue
            diff = (
                int(np.count_nonzero(a != b))
                if a.shape == b.shape
                else max(a.size, b.size)
            )
            report.mismatches.append(
                Mismatch(
                    kind=kind,
                    program=report.program,
                    phase=pw.phase,
                    array="*",
                    detail=(
                        f"symbolic {field} disagrees with wide enumeration "
                        f"on {diff} PE(s)"
                    ),
                    extra=diff,
                )
            )


def _compare_comms(report, ref, sym, obs=None) -> None:
    kind = "exec.plan_comms"
    if len(ref.comms) != len(sym.comms):
        report.mismatches.append(
            Mismatch(
                kind=kind,
                program=report.program,
                phase="*",
                array="*",
                detail=(
                    f"tier emits {len(sym.comms)} comm plans, "
                    f"wide emits {len(ref.comms)}"
                ),
            )
        )
        return
    for cw, cs in zip(ref.comms, sym.comms):
        report.merge_checked(kind)
        if obs is not None:
            obs.count(f"check.{kind}")
        where = dict(
            program=report.program,
            phase=f"{cw.edge[0]}->{cw.edge[1]}",
            array=cw.array,
        )
        if (cw.array, cw.edge, cw.pattern) != (cs.array, cs.edge, cs.pattern):
            report.mismatches.append(
                Mismatch(
                    kind=kind,
                    detail=(
                        f"plan identity differs: wide "
                        f"{(cw.array, cw.edge, cw.pattern)} vs symbolic "
                        f"{(cs.array, cs.edge, cs.pattern)}"
                    ),
                    **where,
                )
            )
            continue
        if cw.puts != cs.puts:
            first = next(
                (
                    (i, a, b)
                    for i, (a, b) in enumerate(zip(cw.puts, cs.puts))
                    if a != b
                ),
                None,
            )
            drift = (
                f"first divergence at put {first[0]}: wide {first[1]}, "
                f"symbolic {first[2]}"
                if first
                else f"{len(cw.puts)} vs {len(cs.puts)} puts"
            )
            report.mismatches.append(
                Mismatch(
                    kind=kind,
                    detail=(
                        f"put aggregation differs "
                        f"(wide {cw.volume} elems/{cw.messages} msgs, "
                        f"symbolic {cs.volume}/{cs.messages}): {drift}"
                    ),
                    **where,
                )
            )


def check_exec_tier(
    program,
    env,
    H,
    *,
    back_edges=(),
    program_name: Optional[str] = None,
    result=None,
    obs=None,
) -> CheckReport:
    """Differentially execute ``program`` under both tiers at ``H``.

    ``result`` may carry a precomputed :func:`repro.analyze` result for
    the same ``(program, env, H, back_edges)`` — only its LCG and plan
    are reused; both executions run fresh here, the wide tier as the
    enumeration oracle and the symbolic tier as the candidate.
    """
    from .. import analyze  # deferred: repro package imports check.faults
    from ..dsm import execute_static, execute_with_plan

    name = program_name or getattr(program, "name", "<program>")
    report = CheckReport(program=name, H=H, env=dict(env))
    if result is None:
        result = analyze(program, env=env, H=H, back_edges=back_edges)
    lcg, plan = result.lcg, result.plan

    ctx = program.context
    prev_obs = getattr(ctx, "obs", None)
    sym_obs = Collector(metrics=True)
    try:
        ctx.obs = sym_obs
        sym_static = execute_static(program, env, H, fast_path="symbolic")
        sym_plan = execute_with_plan(
            program, lcg, plan, env, H, fast_path="symbolic"
        )
    finally:
        ctx.obs = prev_obs
    wide_static = execute_static(program, env, H, fast_path="wide")
    wide_plan = execute_with_plan(program, lcg, plan, env, H, fast_path="wide")

    _compare_phases(report, "exec.static_counts", wide_static, sym_static, obs)
    _compare_phases(report, "exec.plan_counts", wide_plan, sym_plan, obs)
    _compare_comms(report, wide_plan, sym_plan, obs)

    counters = sym_obs.metrics_snapshot().get("counters", {})
    for key in sorted(counters):
        if key.startswith(_OBSERVED):
            report.notes.append(f"{key} = {counters[key]}")
            if obs is not None:
                obs.count(f"check.{key}", counters[key])
    return report
