"""Session oracle — incremental answers vs fresh ``analyze()``, byte-for-byte.

The session subsystem's whole contract is one sentence: a session's
answer at any parameter point is *defined* as a fresh ``analyze()`` at
those parameters.  Warm caches, term memos and fingerprint-driven edge
reuse are accelerations, never approximations.  This oracle drives a
live :class:`repro.session.Session` through the same moves a client
makes — create, a sequence of ``set_param``/``edit_phase`` edits, a
what-if sweep — and after every solve re-runs the analysis cold (no
cache, no memo) at the session's exact parameters, comparing the two
canonical result documents byte for byte.

Families reported:

* ``session.byte_identity`` — one comparison per create/edit solve;
* ``session.sweep_point`` — one per feasible sweep grid point;
* ``session.sha`` — the advertised sha256 matches the document bytes;
* ``session.sweep_isolated`` — a sweep left the session's own
  parameters untouched.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from .. import analyze
from ..document import dumps_canonical
from ..obs import Collector
from ..session.delta import apply_edits
from ..session.state import Session, SessionError
from ..session.sweep import run_sweep
from .report import CheckReport, Mismatch

__all__ = ["check_session"]


def _fresh_document(session: Session, env, H, alpha, beta, bounds) -> dict:
    """The cold-path answer at explicit parameters — the ground truth."""
    result = analyze(
        session.program,
        env=env,
        H=H,
        back_edges=session.back_edges,
        execute=session.execute,
        options=session.options_at(alpha, beta, bounds, fresh=True),
    )
    doc = result.to_document()
    doc["metrics"] = None
    doc["trace"] = None
    return doc


def _diverged_keys(session_doc: dict, fresh_doc: dict) -> list:
    keys = sorted(set(session_doc) | set(fresh_doc))
    return [
        k
        for k in keys
        if dumps_canonical({k: session_doc.get(k)})
        != dumps_canonical({k: fresh_doc.get(k)})
    ]


def _compare_docs(
    report: CheckReport,
    family: str,
    label: str,
    session_doc: dict,
    fresh_doc: dict,
    obs: Optional[Collector] = None,
) -> None:
    report.merge_checked(family)
    if obs is not None:
        obs.count("check.session.comparisons")
    if dumps_canonical(session_doc) == dumps_canonical(fresh_doc):
        return
    diverged = _diverged_keys(session_doc, fresh_doc)
    report.mismatches.append(
        Mismatch(
            kind=family,
            program=report.program,
            phase=label,
            array=",".join(diverged) or "?",
            detail=(
                "session document != fresh analyze() at identical "
                f"parameters ({label}); diverging top-level keys: "
                f"{', '.join(diverged) or 'byte-level only'}"
            ),
        )
    )


def _check_sha(
    report: CheckReport, label: str, doc: dict, advertised: str
) -> None:
    report.merge_checked("session.sha")
    actual = hashlib.sha256(dumps_canonical(doc).encode()).hexdigest()
    if actual != advertised:
        report.mismatches.append(
            Mismatch(
                kind="session.sha",
                program=report.program,
                phase=label,
                array="sha256",
                detail=(
                    f"advertised sha256 {advertised[:12]}… does not match "
                    f"the document bytes ({actual[:12]}…)"
                ),
            )
        )


def check_session(
    program,
    env,
    H: int,
    *,
    back_edges=(),
    program_name: Optional[str] = None,
    options=None,
    obs: Optional[Collector] = None,
) -> CheckReport:
    """Drive one session through edits + a sweep; verify byte identity.

    The edit sequence deliberately crosses every invalidation class:
    an ``H`` move (re-binds every edge fingerprint), a machine-``alpha``
    move (LCG untouched, objective terms move), a phase chunk pin
    (distribution space restricted), and a move back (exact-repeat
    parameter point, the memo-hit path).  The sweep overlays an ``H``
    grid and asks for full documents so each feasible point can be
    checked against the cold path.
    """
    name = program_name or getattr(program, "name", "?")
    report = CheckReport(program=name, H=H, env=dict(env))
    session = Session(
        program,
        env,
        H,
        back_edges=list(back_edges) or None,
        execute=True,
        options=options,
    )
    try:
        # -- create ------------------------------------------------------
        solved = session.solve()
        fresh = _fresh_document(
            session, session.env, session.H, session.alpha, session.beta,
            session.bounds,
        )
        _compare_docs(
            report, "session.byte_identity", "create",
            solved["document"], fresh, obs,
        )
        _check_sha(report, "create", solved["document"], solved["sha256"])

        # -- edits: H, alpha, phase pin, alpha back --------------------
        H_small = max(2, H // 2)
        steps = [
            (f"edit H={H_small}",
             [{"op": "set_param", "key": "H", "value": H_small}]),
            ("edit alpha=50",
             [{"op": "set_param", "key": "alpha", "value": 50.0}]),
        ]
        first_phase = session.phase_names()[0]
        steps.append(
            (f"pin {first_phase} chunk=2",
             [{"op": "edit_phase", "phase": first_phase, "chunk": 2}])
        )
        steps.append(
            ("edit alpha=default",
             [{"op": "set_param", "key": "alpha", "value": None}])
        )
        for label, ops in steps:
            try:
                out = apply_edits(session, ops)
            except (SessionError, ValueError, RuntimeError) as exc:
                # A pin can make the clamped box genuinely infeasible on
                # some programs; that is a legal 400, not a soundness
                # problem.  Undo the clamp and keep checking.
                session.bounds.pop(first_phase, None)
                report.notes.append(f"{label}: infeasible ({exc})")
                continue
            fresh = _fresh_document(
                session, session.env, session.H, session.alpha,
                session.beta, session.bounds,
            )
            _compare_docs(
                report, "session.byte_identity", label,
                out["document"], fresh, obs,
            )
            _check_sha(report, label, out["document"], out["sha256"])

        # -- sweep -------------------------------------------------------
        params_before = session.params()
        grid = {"H": sorted({session.H, H, H_small})}
        sweep = run_sweep(session, grid, include_documents=True)
        for point in sweep["points"]:
            if not point.get("feasible"):
                report.notes.append(
                    f"sweep point {point['params']} infeasible"
                )
                continue
            env_p = dict(session.env)
            H_p = point["params"].get("H", session.H)
            fresh = _fresh_document(
                session, env_p, H_p, session.alpha, session.beta,
                session.bounds,
            )
            label = f"sweep H={H_p}"
            _compare_docs(
                report, "session.sweep_point", label,
                point["document"], fresh, obs,
            )
            _check_sha(report, label, point["document"], point["sha256"])

        report.merge_checked("session.sweep_isolated")
        if session.params() != params_before:
            report.mismatches.append(
                Mismatch(
                    kind="session.sweep_isolated",
                    program=name,
                    phase="sweep",
                    array="params",
                    detail=(
                        "run_sweep mutated the session's own parameters: "
                        f"{params_before} -> {session.params()}"
                    ),
                )
            )
        if not sweep["front"]:
            report.notes.append("sweep returned an empty Pareto front")
    finally:
        session.close()
    return report
