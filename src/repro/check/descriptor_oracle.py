"""Descriptor oracle — differential ARD/PD/ID validation against the IR.

The paper's central claim is that access descriptors enumerate *exactly*
the addresses a phase touches: the PD region equals the union of every
iteration's accesses, the ID view at parallel iteration ``i`` equals
iteration ``i``'s accesses (plus any outside-the-parallel-loop work the
phase does unconditionally), and the storage-symmetry Δs is an upper
bound on the measured overlap of consecutive iterations.  This module
replays the IR through :mod:`repro.ir.interp` to get ground truth and
compares it against the regions enumerated from the descriptors,
reporting structured :class:`~repro.check.report.Mismatch` entries.

Checks per ``(phase, array)``:

``descriptor.region``
    ``union(row_addresses(row))`` over the PD's rows equals
    ``phase_access_set`` exactly (missing and extra addresses are both
    mismatches).  Rows whose evaluated trip count is < 1 contribute the
    empty set (zero-trip loops must not make ``row_addresses`` blow up
    or, worse, enumerate phantom addresses).

``descriptor.iteration``
    For sampled parallel iterations (both ends, the middle), the ID
    view ``row_addresses(row, parallel_iteration=i)`` equals
    ``iteration_access_set`` ∪ the phase's outside-parallel accesses.

``descriptor.symmetry``
    If consecutive iterations measurably share addresses, the intra
    result must claim ``has_overlap`` and its summed Δs must cover the
    measured overlap (claims are conservative: over-claiming is legal,
    under-claiming is a soundness bug).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

import numpy as np

from ..descriptors import compute_pd
from ..descriptors.region import row_addresses
from ..ir import enumerate_phase
from ..ir.interp import iteration_access_set, phase_access_set
from ..locality.intra import check_intra_phase
from .report import CheckReport, Mismatch

__all__ = ["check_descriptors", "descriptor_region"]

_SAMPLE_LIMIT = 4  # example addresses carried per mismatch


def _evalf_int(expr, env) -> int:
    env_f = {k: Fraction(v) for k, v in env.items()}
    return int(expr.evalf(env_f))


def descriptor_region(pd, env, parallel_iteration=None) -> Optional[np.ndarray]:
    """Addresses enumerated by a PD (ID view when an iteration is given).

    Returns ``None`` when any row is not self-contained — the
    descriptor algebra cannot enumerate such a region and the caller
    records the pair as unchecked rather than mismatched.  Rows whose
    evaluated count is < 1 in any dimension are zero-trip: they
    contribute no addresses.

    A row can also fail enumeration with a free symbol the env does not
    bind: a triangular bound keeps the *parallel* loop's index inside a
    sequential count, which ``is_self_contained`` cannot see (the
    symbol is no dim of the row, so it looks like a plain parameter).
    Such rows denote an iteration-dependent family of regions, not one
    region — the same non-enumerable case, reported the same way.
    """
    chunks = []
    try:
        for row in pd.rows:
            if not row.is_self_contained():
                return None
            counts = (_evalf_int(d.count, env) for d in row.dims)
            if any(c < 1 for c in counts):
                continue
            chunks.append(
                row_addresses(row, env, parallel_iteration=parallel_iteration)
            )
    except KeyError:
        return None
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))


def _mismatch(kind, program, phase, array, detail, truth, got) -> Mismatch:
    missing = np.setdiff1d(truth, got)
    extra = np.setdiff1d(got, truth)
    samples = tuple(int(a) for a in np.concatenate([missing, extra])[:_SAMPLE_LIMIT])
    return Mismatch(
        kind=kind,
        program=program,
        phase=phase,
        array=array,
        detail=detail,
        missing=int(missing.size),
        extra=int(extra.size),
        samples=samples,
    )


def _outside_addresses(phase, env, array_name) -> np.ndarray:
    """Addresses the phase touches outside its parallel loop."""
    chunks = [
        tr.addresses
        for ia in enumerate_phase(phase, env, array_name)
        if ia.iteration is None
        for tr in ia.traces
    ]
    chunks = [c for c in chunks if c.size]
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))


def check_descriptors(program, env, *, program_name=None, obs=None) -> CheckReport:
    """Differentially validate every descriptor the program induces."""
    name = program_name or getattr(program, "name", "<program>")
    report = CheckReport(program=name, H=0, env=dict(env))
    ctx = program.context
    for phase in program.phases:
        for array in sorted(phase.arrays(), key=lambda a: a.name):
            _check_pair(report, program, phase, array, ctx, env, obs=obs)
    return report


def _check_pair(report, program, phase, array, ctx, env, *, obs=None) -> None:
    name = report.program
    truth = phase_access_set(phase, env, array.name)
    try:
        pd = compute_pd(phase, array, ctx)
    except Exception as exc:  # descriptor algebra inapplicable, not unsound
        report.notes.append(
            f"{phase.name}/{array.name}: PD inapplicable ({type(exc).__name__})"
        )
        return
    region = descriptor_region(pd, env)
    if region is None:
        report.notes.append(f"{phase.name}/{array.name}: non-self-contained PD")
        return

    report.merge_checked("descriptor.region")
    if obs is not None:
        obs.count("check.descriptor.region")
    if not np.array_equal(region, truth):
        report.mismatches.append(
            _mismatch(
                "descriptor.region",
                name,
                phase.name,
                array.name,
                "PD region != interpreted phase access set",
                truth,
                region,
            )
        )

    par = phase.parallel_loop
    if par is None:
        return
    lo = _evalf_int(par.lower, env)
    hi = _evalf_int(par.upper, env)
    trip = hi - lo + 1
    if trip <= 0:
        return

    outside = _outside_addresses(phase, env, array.name)
    samples = sorted({0, 1, trip // 2, trip - 2, trip - 1} & set(range(trip)))
    for i in samples:
        truth_i = np.union1d(
            iteration_access_set(phase, env, array.name, lo + i), outside
        )
        region_i = descriptor_region(pd, env, parallel_iteration=i)
        report.merge_checked("descriptor.iteration")
        if obs is not None:
            obs.count("check.descriptor.iteration")
        if not np.array_equal(region_i, truth_i):
            report.mismatches.append(
                _mismatch(
                    "descriptor.iteration",
                    name,
                    phase.name,
                    array.name,
                    f"ID view at parallel iteration {i} != interpreted accesses",
                    truth_i,
                    region_i,
                )
            )

    _check_symmetry(report, phase, array, ctx, env, lo, trip, outside, obs=obs)


def _check_symmetry(report, phase, array, ctx, env, lo, trip, outside, *, obs=None):
    """Claimed storage symmetry must cover the measured overlap."""
    if trip < 2:
        return
    try:
        intra = check_intra_phase(phase, array, ctx)
    except Exception as exc:
        report.notes.append(
            f"{phase.name}/{array.name}: intra inapplicable ({type(exc).__name__})"
        )
        return
    measured = 0
    for i in sorted({0, trip // 2, trip - 2} & set(range(trip - 1))):
        a = np.setdiff1d(
            iteration_access_set(phase, env, array.name, lo + i), outside
        )
        b = np.setdiff1d(
            iteration_access_set(phase, env, array.name, lo + i + 1), outside
        )
        measured = max(measured, int(np.intersect1d(a, b).size))
    report.merge_checked("descriptor.symmetry")
    if obs is not None:
        obs.count("check.descriptor.symmetry")
    if measured == 0:
        return
    if not intra.has_overlap:
        report.mismatches.append(
            Mismatch(
                kind="descriptor.symmetry",
                program=report.program,
                phase=phase.name,
                array=array.name,
                detail=(
                    f"consecutive iterations share {measured} addresses but "
                    "symmetry claims no overlap"
                ),
                missing=measured,
            )
        )
        return
    claimed = 0
    for entry in intra.symmetry.overlap or ():
        try:
            claimed += _evalf_int(entry[2], env)
        except KeyError:
            # Iteration-dependent Δs (triangular bounds): the claim has
            # no single concrete value; it conservatively covers any
            # measured overlap.  Record the fallback and stop summing.
            report.notes.append(
                f"{phase.name}/{array.name}: iteration-dependent Δs "
                f"claim {entry[2]} taken as covering"
            )
            return
    if claimed < measured:
        report.mismatches.append(
            Mismatch(
                kind="descriptor.symmetry",
                program=report.program,
                phase=phase.name,
                array=array.name,
                detail=(
                    f"claimed symmetry distance total {claimed} under-covers "
                    f"measured overlap {measured}"
                ),
                missing=measured - claimed,
            )
        )
