"""``python -m repro check`` — the differential soundness sweep.

Runs the descriptor oracle and the LCG oracle over benchmark programs
at one or more machine sizes, optionally with faults armed (proving the
degradation paths still produce sound answers), and fails loudly —
:class:`repro.errors.SoundnessError`, exit status 1 — on any mismatch.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack
from typing import Optional, Sequence, Tuple

from ..errors import SoundnessError
from ..obs import Collector, obs_span
from . import faults as faults_mod

__all__ = ["env_for", "main_check", "run_checks"]

DEFAULT_H = (16, 64, 256)


def env_for(name: str, env: dict, H: int) -> dict:
    """Scale a program's reference env so it stays meaningful at ``H``.

    With fewer parallel iterations than processors the Eq. 7 program is
    genuinely infeasible (nothing to balance), so grow the problem with
    the machine instead of reporting a vacuous run.  Scaling rules live
    with the codes themselves (:data:`repro.codes.ENV_SCALERS`); a code
    without a registered scaler is a hard, typed error — checking an
    unscaled env silently is precisely the vacuous pass this sweep
    exists to rule out.
    """
    from ..codes import scaled_env

    return scaled_env(name, env, H)


def run_checks(
    codes: Optional[Sequence[str]] = None,
    H_values: Sequence[int] = DEFAULT_H,
    *,
    faults: Sequence[str] = (),
    options=None,
    obs: Optional[Collector] = None,
    raise_on_mismatch: bool = True,
    exec_tier: bool = False,
    session: bool = False,
) -> list:
    """Run both oracles over ``codes`` × ``H_values``; return the reports.

    With ``raise_on_mismatch`` (the default) a non-empty mismatch set
    raises :class:`SoundnessError` whose ``reports`` attribute carries
    everything gathered.  ``faults`` names stay armed for the whole
    sweep — the point being that a sweep under faults must *still* come
    back clean, via the documented fallbacks.

    With ``exec_tier`` the sweep instead runs the execution-tier
    differential (:func:`repro.check.exec_oracle.check_exec_tier`):
    symbolic closed-form accounting against wide enumeration, phase
    counts and communication plans byte-for-byte.

    With ``session`` the sweep runs the session oracle
    (:func:`repro.check.session_oracle.check_session`): a live
    :class:`repro.session.Session` driven through edits and a what-if
    sweep, every incremental document compared byte-for-byte against a
    cold ``analyze()`` at the same parameters.
    """
    from .. import analyze
    from ..codes import ALL_CODES
    from .descriptor_oracle import check_descriptors
    from .exec_oracle import check_exec_tier
    from .lcg_oracle import check_lcg
    from .session_oracle import check_session

    selected = sorted(ALL_CODES) if not codes else list(codes)
    for code in selected:
        if code not in ALL_CODES:
            raise ValueError(
                f"unknown program {code!r}; known: {', '.join(sorted(ALL_CODES))}"
            )

    reports = []
    with ExitStack() as stack:
        if faults:
            stack.enter_context(faults_mod.inject(*faults))
        for H in H_values:
            for code in selected:
                builder, ref_env, back_edges = ALL_CODES[code]
                env = env_for(code, ref_env, H)
                program = builder()
                with obs_span(obs, "check", program=code, H=H) as span:
                    if obs is not None:
                        obs.count("check.programs")
                    if session:
                        # The session oracle runs its own warm and cold
                        # analyses internally; a third one here would be
                        # pure waste.
                        with obs_span(obs, "check.session"):
                            new_reports = [
                                check_session(
                                    program,
                                    env,
                                    H,
                                    back_edges=back_edges,
                                    program_name=code,
                                    options=options,
                                    obs=obs,
                                )
                            ]
                        found = sum(
                            len(r.mismatches) for r in new_reports
                        )
                        span.set(mismatches=found)
                        if obs is not None and found:
                            obs.count("check.mismatches", found)
                        reports.extend(new_reports)
                        continue
                    result = analyze(
                        program,
                        env=env,
                        H=H,
                        back_edges=back_edges,
                        options=options,
                        collector=obs,
                    )
                    if exec_tier:
                        with obs_span(obs, "check.exec_tier"):
                            new_reports = [
                                check_exec_tier(
                                    program,
                                    env,
                                    H,
                                    back_edges=back_edges,
                                    program_name=code,
                                    result=result,
                                    obs=obs,
                                )
                            ]
                    else:
                        with obs_span(obs, "check.descriptors"):
                            desc = check_descriptors(
                                program, env, program_name=code, obs=obs
                            )
                        desc.H = H
                        with obs_span(obs, "check.lcg"):
                            lcg = check_lcg(
                                program,
                                env,
                                H,
                                back_edges=back_edges,
                                program_name=code,
                                result=result,
                                obs=obs,
                            )
                        new_reports = [desc, lcg]
                    found = sum(len(r.mismatches) for r in new_reports)
                    span.set(mismatches=found)
                    if obs is not None and found:
                        obs.count("check.mismatches", found)
                reports.extend(new_reports)

    total = sum(len(r.mismatches) for r in reports)
    if total and raise_on_mismatch:
        err = SoundnessError(
            f"differential check found {total} mismatch(es) across "
            f"{len(reports)} reports"
        )
        err.reports = reports
        raise err
    return reports


def _render_all(reports, obs, as_json: bool) -> str:
    if as_json:
        from ..document import RESULT_SCHEMA, dumps_canonical

        doc = {
            "schema": RESULT_SCHEMA,
            "reports": [r.to_json() for r in reports],
        }
        if obs is not None:
            doc["metrics"] = obs.metrics_snapshot()
        return dumps_canonical(doc)
    lines = [r.render() for r in reports]
    total = sum(len(r.mismatches) for r in reports)
    checked = sum(sum(r.checked.values()) for r in reports)
    lines.append(
        f"== {len(reports)} reports, {checked} comparisons, "
        f"{total} mismatch(es) =="
    )
    return "\n".join(lines)


def main_check(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="differential descriptor/LCG soundness check",
    )
    parser.add_argument(
        "--code",
        action="append",
        default=[],
        help="program to check (repeatable; default: all)",
    )
    parser.add_argument(
        "--H",
        default=",".join(str(h) for h in DEFAULT_H),
        help="comma-separated machine sizes (default: 16,64,256)",
    )
    parser.add_argument(
        "--faults",
        default="",
        help=f"comma-separated faults to arm for the sweep "
        f"({', '.join(faults_mod.FAULTS)})",
    )
    parser.add_argument(
        "--opt",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="analysis option spec forwarded to analyze() (repeatable)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")
    parser.add_argument(
        "--exec-tier",
        action="store_true",
        help="run the execution-tier differential instead (symbolic "
        "closed-form accounting vs wide enumeration, counts and "
        "communication plans byte-for-byte)",
    )
    parser.add_argument(
        "--session",
        action="store_true",
        help="run the session oracle instead: drive a live repro.session "
        "Session through edits and a what-if sweep, comparing every "
        "incremental document byte-for-byte against a cold analyze() at "
        "the same parameters",
    )
    parser.add_argument(
        "--trace", action="store_true", help="include span traces in metrics"
    )
    args = parser.parse_args(list(argv))

    from ..options import AnalysisOptions

    try:
        H_values = tuple(int(h) for h in args.H.split(",") if h.strip())
    except ValueError:
        parser.error(f"--H expects comma-separated integers, got {args.H!r}")
    if not H_values:
        parser.error("--H selected no machine sizes")
    try:
        fault_names = faults_mod.parse_fault_list(args.faults)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        options = AnalysisOptions.from_specs(args.opt) if args.opt else None
    except ValueError as exc:
        parser.error(f"bad --opt: {exc}")

    obs = Collector(trace=args.trace, metrics=True)
    try:
        reports = run_checks(
            args.code or None,
            H_values,
            faults=fault_names,
            options=options,
            obs=obs,
            exec_tier=args.exec_tier,
            session=args.session,
        )
    except SoundnessError as err:
        print(_render_all(err.reports, obs, args.json))
        print(f"SOUNDNESS: {err}", file=sys.stderr)
        return 1
    print(_render_all(reports, obs, args.json))
    if not args.json:
        armed = f" (faults armed: {', '.join(fault_names)})" if fault_names else ""
        print(f"soundness: OK{armed}")
    return 0
