"""Graphviz DOT export of the Locality-Communication Graph.

Renders each array's graph in the style of the paper's Figure 6: nodes
labelled with the phase name, the access attribute in parentheses, and
the ``p_kj`` variable; edges labelled L/C; D edges dashed (they are the
un-coupled edges Figure 6 draws dashed before removing).
"""

from __future__ import annotations

from ..locality.lcg import LCG

__all__ = ["lcg_to_dot"]

_EDGE_STYLE = {
    "L": 'color="forestgreen", label="L"',
    "C": 'color="crimson", label="C"',
    "D": 'color="gray", style="dashed", label="D"',
}


def lcg_to_dot(lcg: LCG, array: str) -> str:
    """DOT source for one array's locality-communication graph."""
    g = lcg.graph(array)
    lines = [f'digraph "LCG_{array}" {{', "  rankdir=TB;",
             '  node [shape=ellipse, fontsize=11];']
    for node in g.nodes:
        attr = g.nodes[node]["attr"]
        pvar = lcg.p_names.get((node, array), "")
        lines.append(f'  "{node}" [label="{node}\\n({attr}) {pvar}"];')
    for u, v in g.edges:
        label = g.edges[u, v]["analysis"].label
        style = _EDGE_STYLE.get(label, f'label="{label}"')
        lines.append(f'  "{u}" -> "{v}" [{style}];')
    lines.append("}")
    return "\n".join(lines)
