"""Rendering: paper-style descriptor text and DOT export of LCGs."""

from .report import format_ard, format_id, format_pd, format_ul_gap
from .dot import lcg_to_dot

__all__ = ["format_ard", "format_id", "format_pd", "format_ul_gap", "lcg_to_dot"]
