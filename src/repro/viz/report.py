"""Paper-style textual rendering of descriptors and analyses.

Formats ARDs/PDs the way the paper's Figures 2–3 print them
(``A = (alpha...), delta = (...), tau = (...)``), iteration descriptors
the way Figures 4/8 annotate them, and constraint systems the way
Table 2 lays them out.  Everything returns plain strings so benchmarks
can diff computed artifacts against the paper's.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..descriptors.ard import ARD
from ..descriptors.pd import PhaseDescriptor
from ..iteration.iterdesc import IterationDescriptor

__all__ = [
    "format_ard",
    "format_pd",
    "format_id",
    "format_ul_gap",
]


def format_ard(ard: ARD, name: Optional[str] = None) -> str:
    """One-line Figure 2 style rendering of an ARD."""
    alpha = ", ".join(str(a) for a in ard.alpha)
    delta = ", ".join(str(d) for d in ard.delta)
    lam = ", ".join(str(s) for s in ard.lam)
    label = name or f"A({ard.array.name})"
    return (
        f"{label} = ( alpha=({alpha}), delta=({delta}), "
        f"lambda=({lam}), tau={ard.tau} )"
    )


def format_pd(pd: PhaseDescriptor) -> str:
    """Figure 3 style rendering: the alpha matrix over a shared delta."""
    stride = pd.stride_vector()
    matrix = pd.alpha_matrix()
    lines = [f"P^{pd.phase_name}({pd.array.name}):"]
    header = "  delta = (" + ", ".join(str(s) for s in stride) + ")"
    lines.append(header)
    for row_vals, tau, row in zip(matrix, pd.tau_vector, pd.rows):
        cells = ", ".join("1" if v is None else str(v) for v in row_vals)
        lines.append(f"  A row [{row.kind_label}] = ({cells}),  tau = {tau}")
    return "\n".join(lines)


def format_id(
    idesc: IterationDescriptor,
    iterations: Optional[list] = None,
    env: Optional[Mapping[str, int]] = None,
) -> str:
    """Figure 4/8 style rendering of an iteration descriptor.

    With ``iterations`` and ``env`` given, the concrete base/UL of each
    requested parallel iteration is listed as the figures do.
    """
    lines = [f"I^{idesc.phase_name}({idesc.array.name}):"]
    for r in idesc.rows:
        arrow = "+" if r.sign_p >= 0 else "-"
        lines.append(
            f"  term: tau_B(i) = {r.base0} {arrow} i*{r.delta_p}, "
            f"extent = {r.extent}"
        )
    if iterations is not None and env is not None:
        from fractions import Fraction

        fenv = {k: Fraction(v) for k, v in env.items()}
        for i in iterations:
            ul = idesc.upper_limit(i).evalf(fenv)
            base = idesc.base(i).evalf(fenv)
            lines.append(f"  i={i}: base={base}, UL={ul}")
    return "\n".join(lines)


def format_ul_gap(idesc: IterationDescriptor) -> str:
    """Upper-limit and memory-gap summary (Figure 8's annotations)."""
    return (
        f"UL(I(i), p) + h + 1 = {idesc.balanced_value(_p())}, "
        f"h = {idesc.memory_gap()}"
    )


def _p():
    from ..symbolic import sym

    return sym("p")
