"""The one producer of the versioned analysis result document.

Every surface that serializes an :class:`repro.AnalysisResult` — the
CLI's ``--json`` mode, the service protocol (``POST /analyze`` bodies,
job results), and the differential checker's JSON reports — routes
through :func:`result_document` (usually via
:meth:`repro.AnalysisResult.to_document`), so the wire format has
exactly one producer and a response served by any process is
byte-identical to serializing a serial in-process ``analyze()``.

The document is versioned twice, deliberately:

* ``version`` — the wire protocol generation (shared with the request
  schema in :mod:`repro.service.protocol`);
* ``schema`` — the result-document shape itself, bumped whenever a
  field is added, removed or re-typed so downstream parsers can detect
  drift without diffing keys.

:func:`dumps_canonical` is the one canonical encoding (sorted keys,
fixed separators, no NaN/Inf): byte-identity claims across processes,
shards and restarts all reduce to equality of its output.
"""

from __future__ import annotations

import json
import math
from typing import Optional

__all__ = [
    "RESULT_SCHEMA",
    "WIRE_VERSION",
    "dumps_canonical",
    "result_document",
]

#: Wire-protocol generation (request and response documents share it).
WIRE_VERSION = 1

#: Result-document shape version.  Schema 1 was the PR 4 document
#: (identified only by its wire ``version``); schema 2 added this field
#: and the ``env``/``H`` echo becoming intrinsic to the result.
RESULT_SCHEMA = 2


def _finite(value) -> Optional[float]:
    """A plain finite float, or None (JSON has no NaN/Inf)."""
    value = float(value)
    return value if math.isfinite(value) else None


def _lcg_document(lcg, plan) -> dict:
    broken_by_array: dict = {}
    for phase_k, phase_g, array in plan.relaxed_edges:
        broken_by_array.setdefault(array, set()).add((phase_k, phase_g))
    doc: dict = {}
    for array in lcg.arrays():
        graph = lcg.graph(array)
        nodes = [
            {
                "phase": name,
                "attr": graph.nodes[name]["attr"],
                "p": lcg.p_names.get((name, array), ""),
            }
            for name in lcg._phase_order(array)
        ]
        doc[array] = {
            "nodes": nodes,
            "labels": [list(t) for t in lcg.labels(array)],
            "chains": lcg.chains(array, broken=broken_by_array.get(array)),
        }
    return doc


def _schedule_document(lcg, plan) -> list:
    from .dsm import schedule_communications
    from .dsm.schedule_comm import CommStep, PhaseStep

    steps = []
    for step in schedule_communications(lcg, plan).steps:
        if isinstance(step, PhaseStep):
            steps.append(
                {"kind": "phase", "phase": step.phase, "chunk": step.chunk,
                 "text": str(step)}
            )
        elif isinstance(step, CommStep):
            steps.append(
                {
                    "kind": "comm",
                    "array": step.array,
                    "source_phase": step.source_phase,
                    "drain_phase": step.drain_phase,
                    "pattern": step.pattern,
                    "text": str(step),
                }
            )
        else:  # future step kinds degrade to their rendering
            steps.append({"kind": "other", "text": str(step)})
    return steps


def _report_document(report) -> Optional[dict]:
    if report is None:
        return None
    return {
        "program": report.program,
        "H": report.H,
        "total_local": report.total_local,
        "total_remote": report.total_remote,
        "comm_volume": report.comm_volume,
        "comm_messages": report.comm_messages,
        "parallel_time": _finite(report.parallel_time()),
        "serial_time": _finite(report.serial_time()),
        "speedup": _finite(report.speedup()),
        "efficiency": _finite(report.efficiency()),
        "phases": [
            {
                "phase": p.phase,
                "local": int(p.local.sum()),
                "remote": int(p.remote.sum()),
                "iterations": int(p.iterations.sum()),
            }
            for p in report.phases
        ],
        "comms": [str(c) for c in report.comms],
        "summary": report.summary(),
    }


def result_document(result) -> dict:
    """Serialize one :class:`repro.AnalysisResult` as the wire document.

    Pure data in, pure data out: every value is a JSON-native type and
    the document depends only on the analysis result — serializing a
    serial in-process ``analyze()`` gives the byte-identical document
    any server, shard or replayed job returns for the same request.
    """
    plan = result.plan
    return {
        "version": WIRE_VERSION,
        "schema": RESULT_SCHEMA,
        "program": result.program.name,
        "env": {name: int(value) for name, value in result.env.items()},
        "H": int(result.H),
        "lcg": _lcg_document(result.lcg, plan),
        "constraints": {
            "locality": [str(c) for c in result.constraints.locality],
            "load_balance": [str(c) for c in result.constraints.load_balance],
            "storage": [str(c) for c in result.constraints.storage],
            "affinity": [str(c) for c in result.constraints.affinity],
        },
        "plan": {
            "chunks": {k: int(v) for k, v in plan.chunks.items()},
            "phase_chunks": {
                k: int(v) for k, v in plan.phase_chunks.items()
            },
            "objective": _finite(plan.objective),
            "imbalance": _finite(plan.imbalance),
            "communication": _finite(plan.communication),
            "relaxed_edges": [list(e) for e in plan.relaxed_edges],
            "relaxed_storage": [
                list(e) for e in getattr(plan, "relaxed_storage", ())
            ],
        },
        "schedule": _schedule_document(result.lcg, plan),
        "report": _report_document(result.report),
        "trace": result.trace.to_json() if result.trace is not None else None,
        "metrics": result.metrics,
    }


def dumps_canonical(doc) -> str:
    """The one canonical wire encoding (sorted keys, no whitespace)."""
    return json.dumps(
        doc, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
