"""``ServiceConfig`` — the one frozen configuration value of the service.

PRs 4 and 7 grew :class:`SharedState` and the server a positional-kwarg
spread (``snapshot_path``, ``snapshot_every``, ``plan_path``, cadence,
…) that every new layer had to thread through.  This PR collapses the
whole serving surface into one frozen dataclass, mirroring
:class:`repro.AnalysisOptions`:

* every process of the cluster — router, analysis workers, the
  single-process server — is constructed from a ``ServiceConfig``;
* :meth:`from_spec`/:meth:`to_spec` give it the same escaped
  ``KEY=VALUE,...`` grammar as ``--opt``, so the router ships each
  worker its exact configuration as **one serializable value** (the
  spec string crosses the fork/exec boundary without pickling);
* :meth:`for_shard` derives a worker's config from the router's —
  ephemeral port, shard identity, per-shard snapshot paths carved out
  of ``snapshot_dir`` — so every shard owns an independent warm
  :class:`AnalysisCache`/:class:`PlanCache` pair on disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Optional

from ..options import (
    _parse_bool,
    _partition_unescaped,
    _split_unescaped,
    _unescape,
    _escape,
)

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``python -m repro serve`` can tune, in one value.

    Single-process fields
    ---------------------
    ``threads`` is the per-process analysis thread pool (what
    ``workers`` meant before the cluster existed); ``queue_limit`` the
    admission queue beyond it (overflow answers 429);
    ``snapshot_path``/``plan_path`` the warm-cache and plan-bundle
    pickles, written every ``snapshot_every`` completed analyses.

    Cluster fields
    --------------
    ``workers`` is the number of forked analysis *processes* — 1 keeps
    the in-process single server, ≥2 starts the consistent-hash router
    of :mod:`repro.cluster`.  ``min_workers``/``max_workers`` bound the
    queue-depth autoscaler (both default to ``workers``).
    ``snapshot_dir`` is the root under which each shard keeps its own
    ``shard-N/cache.pkl`` + ``shard-N/plans.pkl``; ``queue_dir``
    enables the durable idempotent job journal.  ``shard`` and
    ``generation`` identify one worker process (the router stamps them
    via :meth:`for_shard`; ``None`` means "not a shard").
    """

    host: str = "127.0.0.1"
    port: int = 8377
    threads: int = 4
    queue_limit: int = 16
    request_timeout: float = 120.0
    snapshot_path: Optional[str] = None
    snapshot_every: int = 16
    plan_path: Optional[str] = None
    result_cache: int = 128
    latency_window: int = 1024
    verbose: bool = False
    workers: int = 1
    min_workers: Optional[int] = None
    max_workers: Optional[int] = None
    snapshot_dir: Optional[str] = None
    queue_dir: Optional[str] = None
    shard: Optional[int] = None
    generation: int = 0
    heartbeat_every: float = 0.5
    replay_limit: int = 5
    scale_window: float = 2.0
    session_limit: int = 64
    session_ttl: float = 600.0

    def __post_init__(self):
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        lo, hi = self.scale_bounds()
        if not (1 <= lo <= hi):
            raise ValueError(
                f"worker bounds must satisfy 1 <= min <= max, got "
                f"min={lo}, max={hi}"
            )
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.replay_limit < 0:
            raise ValueError(
                f"replay_limit must be >= 0, got {self.replay_limit}"
            )
        if self.session_limit < 1:
            raise ValueError(
                f"session_limit must be >= 1, got {self.session_limit}"
            )
        if self.session_ttl <= 0:
            raise ValueError(
                f"session_ttl must be > 0, got {self.session_ttl}"
            )

    # -- derived views ----------------------------------------------------

    def scale_bounds(self) -> tuple:
        """``(min_workers, max_workers)`` with defaults resolved."""
        lo = self.workers if self.min_workers is None else self.min_workers
        hi = self.workers if self.max_workers is None else self.max_workers
        return lo, hi

    @property
    def clustered(self) -> bool:
        """Whether this config asks for the multi-process router tier."""
        _, hi = self.scale_bounds()
        return max(self.workers, hi) > 1 or self.queue_dir is not None

    def shard_dir(self, shard: int) -> Optional[str]:
        if self.snapshot_dir is None:
            return None
        return os.path.join(self.snapshot_dir, f"shard-{shard}")

    def resolved_snapshot_path(self) -> Optional[str]:
        """The analysis-cache pickle this process should load/save."""
        if self.snapshot_path is not None:
            return self.snapshot_path
        base = (
            self.shard_dir(self.shard)
            if self.shard is not None
            else self.snapshot_dir
        )
        return os.path.join(base, "cache.pkl") if base else None

    def resolved_plan_path(self) -> Optional[str]:
        """The plan-bundle pickle this process should load/save."""
        if self.plan_path is not None:
            return self.plan_path
        base = (
            self.shard_dir(self.shard)
            if self.shard is not None
            else self.snapshot_dir
        )
        return os.path.join(base, "plans.pkl") if base else None

    def for_shard(self, shard: int, generation: int = 0) -> "ServiceConfig":
        """Derive one worker process's config from the router's.

        The worker binds an ephemeral port on the router's host, keeps
        the router's analysis knobs (threads, queue, timeout, caches)
        and gets its own snapshot paths under ``snapshot_dir`` so no
        two shards ever contend on one pickle.  ``generation`` counts
        respawns of the same shard (fault seams key off it).
        """
        return replace(
            self,
            port=0,
            workers=1,
            min_workers=None,
            max_workers=None,
            queue_dir=None,
            snapshot_path=(
                os.path.join(self.shard_dir(shard), "cache.pkl")
                if self.snapshot_dir is not None
                else None
            ),
            plan_path=(
                os.path.join(self.shard_dir(shard), "plans.pkl")
                if self.snapshot_dir is not None
                else None
            ),
            shard=shard,
            generation=generation,
        )

    # -- the spec grammar (mirrors AnalysisOptions) -----------------------

    _INT_FIELDS = frozenset(
        {
            "port", "threads", "queue_limit", "snapshot_every",
            "result_cache", "latency_window", "workers", "min_workers",
            "max_workers", "shard", "generation", "replay_limit",
            "session_limit",
        }
    )
    _FLOAT_FIELDS = frozenset(
        {"request_timeout", "heartbeat_every", "scale_window",
         "session_ttl"}
    )
    _BOOL_FIELDS = frozenset({"verbose"})

    @classmethod
    def from_spec(cls, spec: str, **overrides) -> "ServiceConfig":
        """Parse ``"port=8377,workers=4,queue_dir=/var/jobs,..."``.

        Field names are the keys; literal ``,``/``=``/``\\`` inside a
        value (paths, typically) are backslash-escaped exactly as
        :meth:`to_spec` emits them — the two are inverses, which is the
        property that lets the router hand a worker its whole config as
        one string.
        """
        kwargs: dict = {}
        for item in _split_unescaped(spec or "", ","):
            if not _unescape(item).strip():
                continue
            key, sep, value = _partition_unescaped(item, "=")
            if not sep:
                raise ValueError(
                    f"bad service option {_unescape(item).strip()!r}: "
                    f"expected KEY=VALUE"
                )
            key = _unescape(key).strip().replace("-", "_")
            value = _unescape(value.strip())
            if key not in {f.name for f in fields(cls)}:
                raise ValueError(
                    f"unknown service option {key!r}; known keys: "
                    f"{', '.join(f.name for f in fields(cls))}"
                )
            if key in cls._INT_FIELDS:
                kwargs[key] = int(value)
            elif key in cls._FLOAT_FIELDS:
                kwargs[key] = float(value)
            elif key in cls._BOOL_FIELDS:
                kwargs[key] = _parse_bool(key, value)
            else:
                kwargs[key] = value
        kwargs.update(overrides)
        return cls(**kwargs)

    def to_spec(self) -> str:
        """The inverse of :meth:`from_spec` (explicitly-set keys only)."""
        parts: list = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value == f.default:
                continue
            if isinstance(value, bool):
                value = "on" if value else "off"
            elif isinstance(value, float):
                value = repr(value)
            elif isinstance(value, int):
                value = str(value)
            else:
                value = _escape(os.fspath(value))
            parts.append(f"{f.name}={value}")
        return ",".join(parts)
