"""Versioned JSON request/response schema of the analysis service.

One protocol serves three consumers: the HTTP server (``server.py``),
the blocking client (``client.py``) and the one-shot CLI's ``--json``
mode — all three speak exactly the documents built here, so a script
can move between ``python -m repro --json`` and ``curl /analyze``
without changing a parser.

A request names a program (a bundled-code name *or* mini-Fortran source
text), a parameter binding, the processor count ``H`` and an engine
options spec in the ``--opt`` grammar of
:meth:`repro.AnalysisOptions.from_spec`.  A response carries the LCG
labels and chains, the Table-2 constraint system, the Eq. 7 chunking,
the phase/communication schedule, the measured DSM report and — when
the options asked for them — the trace span tree and metrics counters.

Documents are serialized canonically (sorted keys, fixed separators),
which is what makes the acceptance property testable: a served response
for a request is *byte-identical* to serializing a serial
:func:`repro.analyze` of the same program and options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..document import WIRE_VERSION, dumps_canonical
from ..options import AnalysisOptions

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "AnalyzeRequest",
    "build_request_program",
    "request_key",
    "response_document",
    "dumps_canonical",
]

PROTOCOL_VERSION = WIRE_VERSION


class ProtocolError(ValueError):
    """A malformed or unsatisfiable request (maps to HTTP 400)."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError(message)


@dataclass(frozen=True)
class AnalyzeRequest:
    """One validated ``/analyze`` request.

    ``env`` and ``back_edges`` are stored as sorted/ordered tuples so a
    request is hashable and equal requests compare equal regardless of
    the JSON key order they arrived in.  ``back_edges is None`` means
    "use the bundled code's default back edges" (and no back edges for
    source-text programs); an explicit list overrides.
    """

    code: Optional[str] = None
    source: Optional[str] = None
    env: tuple = ()
    H: int = 4
    options_spec: str = ""
    execute: bool = True
    back_edges: Optional[tuple] = None

    def __post_init__(self):
        _require(
            (self.code is None) != (self.source is None),
            "provide exactly one of 'code' and 'source'",
        )
        # Parse eagerly so a bad spec fails at admission, not in a worker.
        object.__setattr__(self, "_options", self._parse_options())

    def _parse_options(self) -> AnalysisOptions:
        try:
            return AnalysisOptions.from_spec(self.options_spec)
        except (ValueError, TypeError) as exc:
            raise ProtocolError(f"bad options spec: {exc}")

    @property
    def options(self) -> AnalysisOptions:
        return self._options

    @classmethod
    def from_json(cls, doc) -> "AnalyzeRequest":
        _require(isinstance(doc, Mapping), "request body must be a JSON object")
        version = doc.get("version", PROTOCOL_VERSION)
        _require(
            version == PROTOCOL_VERSION,
            f"unsupported protocol version {version!r} "
            f"(this server speaks {PROTOCOL_VERSION})",
        )
        known = {
            "version", "code", "source", "env", "H", "options",
            "execute", "back_edges",
        }
        unknown = sorted(set(doc) - known)
        _require(not unknown, f"unknown request fields: {', '.join(unknown)}")

        code = doc.get("code")
        source = doc.get("source")
        _require(
            code is None or isinstance(code, str),
            "'code' must be a string",
        )
        _require(
            source is None or isinstance(source, str),
            "'source' must be a string",
        )

        env_doc = doc.get("env", {})
        _require(
            isinstance(env_doc, Mapping),
            "'env' must be an object of NAME -> integer",
        )
        env = []
        for name, value in env_doc.items():
            _require(
                isinstance(name, str)
                and isinstance(value, int)
                and not isinstance(value, bool),
                f"bad env entry {name!r}: expected NAME -> integer",
            )
            env.append((name, value))

        H = doc.get("H", 4)
        _require(
            isinstance(H, int) and not isinstance(H, bool) and H >= 1,
            f"'H' must be a positive integer, got {H!r}",
        )

        options = doc.get("options", "")
        _require(isinstance(options, str), "'options' must be a spec string")

        execute = doc.get("execute", True)
        _require(isinstance(execute, bool), "'execute' must be a boolean")

        back = doc.get("back_edges")
        if back is not None:
            _require(
                isinstance(back, (list, tuple))
                and all(
                    isinstance(e, (list, tuple))
                    and len(e) == 2
                    and all(isinstance(n, str) for n in e)
                    for e in back
                ),
                "'back_edges' must be a list of [from_phase, to_phase] pairs",
            )
            back = tuple((e[0], e[1]) for e in back)

        return cls(
            code=code,
            source=source,
            env=tuple(sorted(env)),
            H=H,
            options_spec=options,
            execute=execute,
            back_edges=back,
        )

    def to_json(self) -> dict:
        doc: dict = {"version": PROTOCOL_VERSION, "H": self.H}
        if self.code is not None:
            doc["code"] = self.code
        if self.source is not None:
            doc["source"] = self.source
        if self.env:
            doc["env"] = dict(self.env)
        if self.options_spec:
            doc["options"] = self.options_spec
        if not self.execute:
            doc["execute"] = False
        if self.back_edges is not None:
            doc["back_edges"] = [list(e) for e in self.back_edges]
        return doc


def build_request_program(request: AnalyzeRequest):
    """Materialize a request: ``(program, env, back_edges)`` or raise.

    Bundled codes contribute their reference binding and default back
    edges; the request's ``env`` overrides per name and an explicit
    ``back_edges`` replaces the default.  Every failure mode (unknown
    code, parse error, validation error, empty binding) is a
    :class:`ProtocolError` so the server can answer 400 rather than 500.
    """
    if request.code is not None:
        from ..codes import ALL_CODES

        try:
            builder, default_env, default_back = ALL_CODES[request.code]
        except KeyError:
            raise ProtocolError(
                f"unknown code {request.code!r}; choose from "
                f"{', '.join(sorted(ALL_CODES))}"
            )
        program = builder()
    else:
        from ..ir.parser import parse_and_lower

        try:
            program = parse_and_lower(request.source)
        except Exception as exc:
            raise ProtocolError(f"source does not parse: {exc}")
        default_env, default_back = {}, []

    from ..ir import validate_program

    diagnostics = validate_program(program)
    errors = [d for d in diagnostics if d.severity == "error"]
    if errors:
        raise ProtocolError(
            "program does not validate: " + "; ".join(str(d) for d in errors)
        )

    env = dict(default_env)
    env.update(dict(request.env))
    _require(bool(env), "no parameter binding: pass 'env'")

    back = (
        list(request.back_edges)
        if request.back_edges is not None
        else list(default_back)
    )
    return program, env, back


def request_key(request: AnalyzeRequest, program, env: Mapping[str, int],
                back_edges) -> tuple:
    """The single-flight/result-cache key of one materialized request.

    Keyed on the PR-2 *structural* program fingerprint rather than the
    request text, so a bundled-code request and a source-text request
    that lower to the same program coalesce onto one in-flight analysis.
    The canonical options spec (``to_spec`` of the parsed options)
    normalizes spelling: ``engine=serial`` and ``engine = serial`` — and
    any alias key — produce the same key.
    """
    from ..descriptors.fingerprint import program_fingerprint

    return (
        program_fingerprint(program),
        tuple(sorted((k, int(v)) for k, v in env.items())),
        int(request.H),
        request.options.to_spec(),
        bool(request.execute),
        tuple(back_edges),
    )


# ---------------------------------------------------------------------------
# response documents
# ---------------------------------------------------------------------------


def response_document(
    result,
    env: Optional[Mapping[str, int]] = None,
    H: Optional[int] = None,
) -> dict:
    """The response body for one :class:`repro.AnalysisResult`.

    A thin delegate to :meth:`repro.AnalysisResult.to_document` — the
    result carries its own ``env``/``H`` binding since schema 2, so the
    wire format has exactly one producer (:mod:`repro.document`).  The
    legacy ``env``/``H`` arguments are accepted for caller symmetry and
    cross-checked when given.
    """
    if env is not None and dict(env) != dict(result.env):
        raise ValueError(
            f"env {dict(env)!r} does not match the analyzed binding "
            f"{dict(result.env)!r}"
        )
    if H is not None and int(H) != int(result.H):
        raise ValueError(
            f"H {H!r} does not match the analyzed machine size {result.H!r}"
        )
    return result.to_document()
