"""``repro.service`` — the concurrent locality-analysis server.

The full paper pipeline (ARDs → PDs/IDs → LCG → ILP distribution → DSM
execution) behind a long-lived, stdlib-only HTTP service with request
coalescing, a shared warm analysis cache and explicit backpressure:

* :mod:`.config` — :class:`ServiceConfig`, the one frozen
  configuration value every serving process is built from,
* :mod:`.protocol` — the versioned JSON request/response schema over
  the wire document of :mod:`repro.document` (the serializer the CLI's
  ``--json`` mode shares),
* :mod:`.server` — ``python -m repro serve``: bounded admission, a
  thread worker pool, per-request timeouts, 429 on overload, graceful
  SIGTERM drain,
* :mod:`.coalesce` — single-flight dedup + a result LRU,
* :mod:`.state` — the shared warm :class:`AnalysisCache` and its
  periodic disk snapshots, plus server-wide metrics,
* :mod:`.client` — ``python -m repro query``: a blocking client with
  retry and exponential backoff.

The multi-process scale-out tier (``serve --workers N``) lives in
:mod:`repro.cluster` and composes these same pieces per shard.
"""

from .client import ServiceClient, ServiceError, ServiceUnavailable
from .coalesce import ResultLRU, SingleFlight
from .config import ServiceConfig
from .protocol import (
    PROTOCOL_VERSION,
    AnalyzeRequest,
    ProtocolError,
    dumps_canonical,
    response_document,
)
from .server import AnalysisServer, serve_in_thread
from .state import ServerMetrics, SharedState

__all__ = [
    "PROTOCOL_VERSION",
    "AnalysisServer",
    "AnalyzeRequest",
    "ProtocolError",
    "ResultLRU",
    "ServerMetrics",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailable",
    "SharedState",
    "SingleFlight",
    "dumps_canonical",
    "response_document",
    "serve_in_thread",
]
