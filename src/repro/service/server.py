"""The long-lived analysis server: ``python -m repro serve``.

Stdlib only: a :class:`ThreadingHTTPServer` front end (one thread per
connection) that *admits* work into a bounded queue feeding a fixed
:class:`~concurrent.futures.ThreadPoolExecutor` worker pool.  The
pieces, in request order:

1. **Admission** — a counting semaphore sized ``workers + queue_limit``.
   A full queue answers **429** immediately (with ``Retry-After``), so
   overload degrades to fast, explicit backpressure instead of
   unbounded queueing; the blocking client backs off and retries.
2. **Result LRU** — recently finished response documents, keyed on the
   structural :func:`~repro.service.protocol.request_key`; a repeat of
   a finished request never re-analyses.
3. **Single-flight** — concurrent identical requests coalesce onto one
   in-flight analysis (:mod:`repro.service.coalesce`); followers share
   the leader's document.
4. **The analysis** — :func:`repro.analyze` against the shared warm
   :class:`~repro.locality.engine.AnalysisCache` (thread-safe), with a
   per-request :class:`repro.obs.Collector` whose counters fold into
   the server-wide ``/metrics`` totals.
5. **Graceful drain** — SIGTERM/SIGINT stop the accept loop, let every
   queued and in-flight request finish and respond, then write the
   final cache snapshot.  No admitted work is dropped.

Endpoints: ``POST /analyze``, ``GET /healthz``, ``GET /metrics``,
``GET /cache/stats``, and the interactive session tier
(:mod:`repro.session`): ``POST /session``, ``GET /session/{id}``,
``POST /session/{id}/edit``, ``POST /session/{id}/sweep``,
``DELETE /session/{id}`` — a bounded TTL-evicted table of warm
incremental-analysis sessions sharing the server's analysis cache.

The worker pool is deliberately made of *threads*: the pipeline's hot
loops sit in NumPy/symbolic code, the shared caches make most repeat
work O(lookup), and an in-process pool is what lets every request share
one warm cache.  A request may still opt into the fork-based parallel
LCG engine via ``options="engine=parallel"``; the engine falls back to
serial dispatch if the pool cannot be created.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .. import __version__, Collector, analyze
from ..session.api import (
    SessionLimitError,
    SessionNotFound,
    SessionTable,
    handle_create,
    handle_delete,
    handle_edit,
    handle_get,
    handle_sweep,
    session_route,
)
from ..session.state import SessionError
from .coalesce import ResultLRU, SingleFlight
from .config import ServiceConfig
from .protocol import (
    PROTOCOL_VERSION,
    AnalyzeRequest,
    ProtocolError,
    build_request_program,
    dumps_canonical,
    request_key,
)
from .state import ServerMetrics, SharedState

__all__ = ["ServiceConfig", "AnalysisServer", "serve_in_thread", "main_serve"]

#: Upper bound on request bodies (source text is small; anything bigger
#: is a mistake or abuse).
MAX_BODY_BYTES = 4 << 20


class AnalysisServer(ThreadingHTTPServer):
    """ThreadingHTTPServer + the serving state machine."""

    daemon_threads = False  # drain waits for in-flight handler threads
    block_on_close = True

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.state = SharedState(config)
        self.metrics = ServerMetrics(latency_window=config.latency_window)
        self.flights = SingleFlight()
        self.results = ResultLRU(config.result_cache)
        self.sessions = SessionTable(
            limit=config.session_limit, ttl=config.session_ttl
        )
        self.pool = ThreadPoolExecutor(
            max_workers=config.threads, thread_name_prefix="repro-analyze"
        )
        self._admission = threading.BoundedSemaphore(
            config.threads + config.queue_limit
        )
        self._gauge_lock = threading.Lock()
        self._admitted = 0  # admitted, not yet responded
        self._in_flight = 0  # actually running in a worker
        self._draining = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_started = False
        self._drain_done = threading.Event()
        #: Test seam: called as ``job_hook(request, key)`` inside the
        #: single-flight leader, before the analysis runs.
        self.job_hook = None
        super().__init__((config.host, config.port), _Handler)

    # -- admission ------------------------------------------------------

    def admit(self) -> bool:
        ok = self._admission.acquire(blocking=False)
        if ok:
            with self._gauge_lock:
                self._admitted += 1
        return ok

    def release(self) -> None:
        with self._gauge_lock:
            self._admitted -= 1
        self._admission.release()

    def load(self) -> dict:
        with self._gauge_lock:
            admitted, in_flight = self._admitted, self._in_flight
        return {
            "admitted": admitted,
            "in_flight": in_flight,
            "queue_depth": max(0, admitted - in_flight),
            "capacity": self.config.threads + self.config.queue_limit,
        }

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- the job --------------------------------------------------------

    def run_job(self, request: AnalyzeRequest) -> dict:
        """Materialize, dedup and analyse one admitted request."""
        with self._gauge_lock:
            self._in_flight += 1
        try:
            program, env, back = build_request_program(request)
            key = request_key(request, program, env, back)
            cached = self.results.get(key)
            if cached is not None:
                self.metrics.bump("analyze.result_cache_hits")
                return cached

            def compute() -> dict:
                if self.job_hook is not None:
                    self.job_hook(request, key)
                opts = replace(
                    request.options, analysis_cache=self.state.cache
                )
                if opts.plan_cache is None:
                    # Share the server's plan bundle: every request
                    # records into / replays from one compiled-plan
                    # registry, persisted on the snapshot cadence.
                    opts = replace(
                        opts,
                        plan_cache=self.state.plan_cache,
                        plan=True if opts.plan is None else opts.plan,
                    )
                collector = Collector(
                    trace=request.options.trace, metrics=True
                )
                result = analyze(
                    program,
                    env=env,
                    H=request.H,
                    back_edges=back,
                    execute=request.execute,
                    options=opts,
                    collector=collector,
                )
                doc = result.to_document()
                if not request.options.metrics:
                    doc["metrics"] = None
                self.metrics.merge_counters(collector.counters)
                self.metrics.bump("analyze.computed")
                self.state.note_completed()
                return doc

            doc, leader = self.flights.do(key, compute)
            if leader:
                self.results.put(key, doc)
            else:
                self.metrics.bump("analyze.coalesced_hits")
            return doc
        finally:
            with self._gauge_lock:
                self._in_flight -= 1

    def run_session_job(self, verb: str, sid, body) -> tuple:
        """One session operation; ``(status, doc, headers)``.

        Session requests ride the same admission/pool path as
        ``/analyze`` (the caller handles that); this translates the
        session subsystem's exceptions to HTTP statuses.  Sessions
        share the server's warm :class:`AnalysisCache`, so a session's
        first solve reuses whatever ``/analyze`` traffic already built.
        """
        with self._gauge_lock:
            self._in_flight += 1
        try:
            if verb == "create":
                doc = handle_create(
                    self.sessions, body, cache=self.state.cache
                )
                self.metrics.bump("sessions.created")
            elif verb == "edit":
                doc = handle_edit(self.sessions, sid, body)
                self.metrics.bump("sessions.edits")
            elif verb == "sweep":
                doc = handle_sweep(self.sessions, sid, body)
                self.metrics.bump("sessions.sweeps")
            elif verb == "get":
                doc = handle_get(self.sessions, sid)
            elif verb == "delete":
                doc = handle_delete(self.sessions, sid)
                self.metrics.bump("sessions.deleted")
            else:
                return 404, {"error": f"no such session verb {verb!r}"}, {}
            return 200, doc, {}
        except (ProtocolError, SessionError) as exc:
            return 400, {"error": str(exc)}, {}
        except SessionNotFound:
            return 404, {"error": f"no such session {sid!r}"}, {}
        except SessionLimitError as exc:
            self.metrics.bump("sessions.rejected_full")
            return 429, {"error": str(exc)}, {"Retry-After": "1"}
        finally:
            with self._gauge_lock:
                self._in_flight -= 1

    # -- read-only documents --------------------------------------------

    def health_document(self) -> dict:
        doc = {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
        }
        if self.config.shard is not None:
            doc["shard"] = self.config.shard
            doc["generation"] = self.config.generation
        return doc

    def metrics_document(self) -> dict:
        doc = self.metrics.snapshot()
        doc.update(self.load())
        doc["coalesce"] = {
            "coalesced_hits": self.flights.coalesced,
            "led": self.flights.led,
            "in_flight_keys": self.flights.in_flight(),
        }
        doc["result_cache"] = self.results.stats()
        doc["sessions"] = self.sessions.describe()
        cache = self.state.cache.snapshot_stats()
        doc["analysis_cache"] = {
            "edge_hit_rate": cache["edge_hit_rate"],
            "intra_hit_rate": cache["intra_hit_rate"],
            "entries": cache["entries"],
            "load_failed": cache["stats"].get("load_failed", 0),
        }
        doc["draining"] = self.draining
        return doc

    def cache_stats_document(self) -> dict:
        doc = self.state.stats()
        doc["result_cache"] = self.results.stats()
        return doc

    # -- drain ----------------------------------------------------------

    def drain(self) -> None:
        """Stop accepting, finish all admitted work, snapshot, close.

        Idempotent and safe to call from any non-serving thread;
        concurrent callers block until the first finishes.
        """
        with self._drain_lock:
            first = not self._drain_started
            self._drain_started = True
        if not first:
            self._drain_done.wait()
            return
        self._draining.set()
        self.shutdown()  # stop the accept loop (serve_forever returns)
        self.pool.shutdown(wait=True)  # queued + running jobs finish
        self.server_close()  # joins in-flight handler threads
        self.sessions.close_all()  # release every live session's state
        self.state.close()  # final cache snapshot
        self._drain_done.set()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: Idle keep-alive connections time out so a drain is never held
    #: hostage by a client that keeps its socket open.
    timeout = 10
    server: AnalysisServer  # set by socketserver

    # -- plumbing -------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.config.verbose:
            sys.stderr.write(
                "%s - - [%s] %s\n"
                % (self.address_string(), self.log_date_time_string(),
                   format % args)
            )

    def _respond(self, status: int, doc, headers: Optional[dict] = None):
        body = dumps_canonical(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.server.metrics.note_response(status)

    def _error(self, status: int, message: str,
               headers: Optional[dict] = None):
        self._respond(status, {"error": message}, headers)

    # -- routes ---------------------------------------------------------

    _session_route = staticmethod(session_route)

    def _read_json_body(self):
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if length <= 0:
            self._error(400, "missing request body")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        try:
            doc = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not JSON: {exc}")
            return None
        if not isinstance(doc, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return doc

    def do_GET(self):
        if self.path == "/healthz":
            self._respond(200, self.server.health_document())
        elif self.path == "/metrics":
            self._respond(200, self.server.metrics_document())
        elif self.path == "/cache/stats":
            self._respond(200, self.server.cache_stats_document())
        else:
            route = self._session_route(self.path)
            if route is not None and route[0] == "entity":
                status, doc, headers = self.server.run_session_job(
                    "get", route[1], None
                )
                self._respond(status, doc, headers)
                return
            self._error(404, f"no such endpoint {self.path!r}")

    def do_DELETE(self):
        route = self._session_route(self.path)
        if route is None or route[0] != "entity":
            self._error(404, f"no such endpoint {self.path!r}")
            return
        status, doc, headers = self.server.run_session_job(
            "delete", route[1], None
        )
        self._respond(status, doc, headers)

    def do_POST(self):
        session_route = None
        if self.path != "/analyze":
            session_route = self._session_route(self.path)
            if session_route is None or session_route[0] == "entity":
                self._error(404, f"no such endpoint {self.path!r}")
                return
        if self.server.draining:
            self._error(
                503, "server is draining", headers={"Retry-After": "1"}
            )
            return
        payload = self._read_json_body()
        if payload is None:
            return
        if session_route is None:
            try:
                request = AnalyzeRequest.from_json(payload)
            except ProtocolError as exc:
                self._error(400, str(exc))
                return

        if not self.server.admit():
            self.server.metrics.bump("analyze.rejected_busy")
            self._error(
                429,
                "server at capacity; retry with backoff",
                headers={"Retry-After": "1"},
            )
            return
        t0 = time.perf_counter()
        try:
            if session_route is None:
                future = self.server.pool.submit(
                    self.server.run_job, request
                )
            else:
                verb, sid = session_route
                future = self.server.pool.submit(
                    self.server.run_session_job, verb, sid, payload
                )
            try:
                outcome = future.result(
                    timeout=self.server.config.request_timeout
                )
            except FutureTimeout:
                future.cancel()
                self.server.metrics.bump("analyze.timeouts")
                self._error(
                    504,
                    f"analysis exceeded "
                    f"{self.server.config.request_timeout}s",
                )
                return
            except ProtocolError as exc:
                self._error(400, str(exc))
                return
            except RuntimeError as exc:
                if "cannot schedule new futures" in str(exc):
                    self._error(
                        503, "server is draining",
                        headers={"Retry-After": "1"},
                    )
                    return
                raise
            if session_route is None:
                self._respond(200, outcome)
            else:
                status, doc, headers = outcome
                self._respond(status, doc, headers)
        except (BrokenPipeError, ConnectionResetError):
            raise
        except Exception as exc:  # defensive: a bug must not kill the thread
            self.server.metrics.bump("analyze.errors")
            self._error(500, f"internal error: {type(exc).__name__}: {exc}")
        finally:
            self.server.release()
            self.server.metrics.observe_latency(time.perf_counter() - t0)


def serve_in_thread(config: ServiceConfig) -> tuple:
    """Start a server on a background thread; ``(server, thread)``.

    ``config.port = 0`` picks an ephemeral port — read it back from
    ``server.server_address``.  Callers own shutdown: ``server.drain()``
    then ``thread.join()``.
    """
    server = AnalysisServer(config)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread


def main_serve(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the locality-analysis service: POST /analyze, "
            "GET /healthz, GET /metrics, GET /cache/stats — and, with "
            "--workers N (N >= 2) or --queue-dir, the sharded "
            "multi-process cluster with POST /jobs."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="analysis worker PROCESSES; >= 2 starts the consistent-hash "
        "cluster router (each worker owns its own warm cache shard)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="analysis threads per worker process",
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=None,
        help="autoscaler floor on worker processes (default: --workers)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="autoscaler ceiling on worker processes (default: --workers)",
    )
    parser.add_argument(
        "--queue",
        type=int,
        default=16,
        help="admission queue beyond the threads; overflow answers 429",
    )
    parser.add_argument(
        "--queue-dir",
        metavar="DIR",
        help="durable idempotent job queue: POST /jobs journals every "
        "batch request to DIR (atomic fsync-rename) and replays "
        "unfinished jobs on boot",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-request analysis timeout in seconds (504 on expiry)",
    )
    parser.add_argument(
        "--snapshot",
        metavar="FILE",
        help="warm-start the shared analysis cache from FILE and "
        "periodically pickle it back (same format as --opt cache=FILE)",
    )
    parser.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        help="root directory for per-shard cache/plan snapshots "
        "(DIR/shard-N/{cache,plans}.pkl in cluster mode; "
        "DIR/{cache,plans}.pkl single-process)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=16,
        metavar="N",
        help="snapshot the cache every N completed analyses",
    )
    parser.add_argument(
        "--plan-snapshot",
        metavar="FILE",
        help="load the compiled-plan bundle from FILE at boot (plans + "
        "compile/refutation banks, same format as --opt "
        "plan_cache=FILE) and save it back on the snapshot cadence",
    )
    parser.add_argument(
        "--result-cache",
        type=int,
        default=128,
        metavar="N",
        help="LRU capacity for finished response documents",
    )
    parser.add_argument(
        "--session-limit",
        type=int,
        default=64,
        metavar="N",
        help="bounded live interactive-session table; a full table "
        "answers POST /session with 429 + Retry-After until a "
        "session is deleted or expires",
    )
    parser.add_argument(
        "--session-ttl",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="idle sessions are closed and their caches freed after "
        "this long",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every request"
    )
    args = parser.parse_args(argv)

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        threads=args.threads,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        queue_limit=args.queue,
        queue_dir=args.queue_dir,
        request_timeout=args.timeout,
        snapshot_path=args.snapshot,
        snapshot_dir=args.snapshot_dir,
        snapshot_every=args.snapshot_every,
        plan_path=args.plan_snapshot,
        result_cache=args.result_cache,
        session_limit=args.session_limit,
        session_ttl=args.session_ttl,
        verbose=args.verbose,
    )
    if config.clustered:
        from ..cluster import main_cluster

        return main_cluster(config)
    try:
        server = AnalysisServer(config)
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1

    host, port = server.server_address[:2]
    print(
        f"repro service v{__version__} (protocol {PROTOCOL_VERSION}) "
        f"listening on http://{host}:{port} — "
        f"{config.threads} threads, queue {config.queue_limit}",
        file=sys.stderr,
    )

    def on_signal(signum, frame):
        print(
            f"signal {signal.Signals(signum).name}: draining...",
            file=sys.stderr,
        )
        threading.Thread(
            target=server.drain, name="repro-drain", daemon=True
        ).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, on_signal)
    try:
        server.serve_forever()
    finally:
        server.drain()  # idempotent; waits for a signal-started drain
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("drained; cache snapshot saved", file=sys.stderr)
    return 0
