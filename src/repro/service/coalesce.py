"""Request coalescing: single-flight dedup + an LRU of recent results.

Locality analysis is expensive and highly reusable — the same bundled
codes (and the same kernel families) are analysed over and over — so
the server never runs two identical analyses at once and never re-runs
one it just finished:

* :class:`SingleFlight` — the first request for a key becomes the
  *leader* and computes; concurrent requests for the same key become
  *followers* and block until the leader publishes, then share the very
  same result object (or re-raise the leader's exception).  This is the
  classic single-flight shape (Go's ``singleflight``, groupcache).
* :class:`ResultLRU` — a bounded, thread-safe map of recently finished
  response documents, consulted before single-flight, so duplicate
  requests that *don't* overlap in time are also answered without
  re-analysis.

Both are generic over hashable keys; the server keys them on the
structural :func:`~repro.service.protocol.request_key`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

__all__ = ["SingleFlight", "ResultLRU"]


class _Flight:
    """One in-flight computation: an event plus its outcome slot."""

    __slots__ = ("done", "value", "error", "followers")

    def __init__(self):
        self.done = threading.Event()
        self.value = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class SingleFlight:
    """Deduplicate concurrent calls with the same key onto one worker."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict = {}
        self.coalesced = 0  # lifetime follower count
        self.led = 0  # lifetime leader count

    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def do(self, key, fn: Callable[[], object]):
        """Run ``fn`` once per concurrent key; return ``(value, leader)``.

        ``leader`` is True for the call that actually computed.  The
        leader's exception propagates to every caller of the flight.
        The flight is removed before the leader publishes, so a *later*
        identical request starts a fresh computation rather than reading
        a completed flight (the result LRU is the layer that serves
        those).
        """
        leader = False
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.followers += 1
                self.coalesced += 1
            else:
                flight = _Flight()
                self._flights[key] = flight
                self.led += 1
                leader = True
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, False
        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.value, True


class ResultLRU:
    """Thread-safe bounded LRU of finished response documents."""

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._items: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def get(self, key):
        with self._lock:
            if key in self._items:
                self._items.move_to_end(key)
                self.hits += 1
                return self._items[key]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._items:
                self._items.move_to_end(key)
            self._items[key] = value
            while len(self._items) > self.capacity:
                self._items.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._items),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else None,
            }
