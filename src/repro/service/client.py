"""Blocking HTTP client for the analysis service: ``python -m repro query``.

Stdlib only (:mod:`http.client`).  The client opens one connection per
request (each call is therefore thread-safe and drain-friendly) and
retries transient failures — connection refusals/resets, **429**
backpressure and **503** drain responses — with capped exponential
backoff, honouring a ``Retry-After`` header when the server sends one.
Protocol-level failures (4xx other than 429) raise immediately: a
malformed request never gets better by retrying.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
from typing import Callable, Mapping, Optional

from .protocol import PROTOCOL_VERSION, AnalyzeRequest

__all__ = ["ServiceError", "ServiceUnavailable", "ServiceClient", "main_query"]

#: Statuses worth retrying: backpressure and drain are explicitly
#: temporary; everything else reflects the request or a server bug.
RETRYABLE_STATUSES = (429, 503)


class ServiceError(Exception):
    """A definitive (non-retryable) error response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceUnavailable(ServiceError):
    """Every retry exhausted against a busy/draining/unreachable server."""


class ServiceClient:
    """Blocking client with retry + capped exponential backoff.

    ``retries`` counts *additional* attempts after the first; backoff
    sleeps ``backoff * 2**attempt`` seconds, capped at ``backoff_cap``.
    A ``Retry-After`` header, when the server sends one, is used instead
    of the computed delay (still capped).  ``sleep`` is injectable for
    tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8377,
        timeout: float = 180.0,
        retries: int = 4,
        backoff: float = 0.25,
        backoff_cap: float = 4.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._sleep = sleep

    # -- transport ------------------------------------------------------

    def _send_once(self, method: str, path: str,
                   body: Optional[bytes]) -> tuple:
        """One HTTP exchange: ``(status, parsed JSON, headers)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            try:
                doc = json.loads(payload) if payload else None
            except json.JSONDecodeError:
                doc = {"error": payload.decode("utf-8", "replace")}
            return response.status, doc, dict(response.getheaders())
        finally:
            conn.close()

    def _delay(self, attempt: int, headers: Mapping[str, str]) -> float:
        retry_after = headers.get("Retry-After")
        if retry_after is not None:
            try:
                return min(float(retry_after), self.backoff_cap)
            except ValueError:
                pass
        return min(self.backoff * (2 ** attempt), self.backoff_cap)

    def request(self, method: str, path: str,
                doc: Optional[dict] = None) -> dict:
        """Send with retries; return the parsed 2xx body."""
        body = (
            json.dumps(doc).encode("utf-8") if doc is not None else None
        )
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            try:
                status, payload, headers = self._send_once(
                    method, path, body
                )
            except (ConnectionError, OSError) as exc:
                last_error = f"connection failed: {exc}"
                if attempt < self.retries:
                    self._sleep(self._delay(attempt, {}))
                continue
            if 200 <= status < 300:
                return payload
            message = (
                payload.get("error", "") if isinstance(payload, dict) else ""
            ) or http.client.responses.get(status, "error")
            if status in RETRYABLE_STATUSES:
                last_error = f"HTTP {status}: {message}"
                if attempt < self.retries:
                    self._sleep(self._delay(attempt, headers))
                continue
            raise ServiceError(status, message)
        raise ServiceUnavailable(
            0, last_error or "retries exhausted"
        )

    # -- API ------------------------------------------------------------

    def analyze(
        self,
        code: Optional[str] = None,
        source: Optional[str] = None,
        env: Optional[Mapping[str, int]] = None,
        H: int = 4,
        options: str = "",
        execute: bool = True,
        back_edges: Optional[list] = None,
    ) -> dict:
        """Run one analysis on the server; returns the response document."""
        request = AnalyzeRequest(
            code=code,
            source=source,
            env=tuple(sorted((env or {}).items())),
            H=H,
            options_spec=options,
            execute=execute,
            back_edges=(
                tuple((u, v) for u, v in back_edges)
                if back_edges is not None
                else None
            ),
        )
        return self.request("POST", "/analyze", request.to_json())

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def cache_stats(self) -> dict:
        return self.request("GET", "/cache/stats")


def main_query(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro query",
        description=(
            "Submit one analysis to a running repro service and print "
            "the JSON response document."
        ),
    )
    parser.add_argument("source", nargs="?", help="mini-Fortran source file")
    parser.add_argument(
        "--code", help="analyse a bundled suite code instead of a file"
    )
    parser.add_argument(
        "--env", default="", help="parameter binding, e.g. P=16,p=4"
    )
    parser.add_argument("--H", type=int, default=4, help="processor count")
    parser.add_argument(
        "--opt",
        action="append",
        default=[],
        metavar="KEY=VALUE,...",
        help="engine options spec (the --opt grammar of the one-shot CLI)",
    )
    parser.add_argument(
        "--no-execute",
        action="store_true",
        help="skip the DSM simulation (analysis only)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377)
    parser.add_argument("--timeout", type=float, default=180.0)
    parser.add_argument(
        "--retries", type=int, default=4,
        help="additional attempts on 429/503/connection failure",
    )
    parser.add_argument(
        "--endpoint",
        choices=["analyze", "healthz", "metrics", "cache-stats"],
        default="analyze",
        help="what to ask the server (default: run an analysis)",
    )
    args = parser.parse_args(argv)

    client = ServiceClient(
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        retries=args.retries,
    )
    try:
        if args.endpoint == "healthz":
            doc = client.health()
        elif args.endpoint == "metrics":
            doc = client.metrics()
        elif args.endpoint == "cache-stats":
            doc = client.cache_stats()
        else:
            from ..cli import _parse_env

            source = None
            if args.source:
                with open(args.source) as handle:
                    source = handle.read()
            if (source is None) == (args.code is None):
                raise SystemExit(
                    "provide a source file or --code NAME (exactly one)"
                )
            doc = client.analyze(
                code=args.code,
                source=source,
                env=_parse_env(args.env),
                H=args.H,
                options=",".join(args.opt),
                execute=not args.no_execute,
            )
    except ServiceError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    try:
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
    except BrokenPipeError:  # e.g. `repro query ... | head`
        sys.stderr.close()  # suppress the interpreter's EPIPE warning
    return 0
