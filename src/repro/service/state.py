"""Shared server state: the warm analysis cache and aggregated metrics.

Every request that reaches a worker runs against **one**
:class:`~repro.locality.engine.AnalysisCache` instance (thread-safe
since this PR), so the fingerprint memo warms monotonically across
requests and clients: the first TFFT2 analysis pays for every later
one, whichever thread serves it.  The cache is periodically pickled to
disk with the same payload format the ``--opt cache=FILE`` CLI path
uses, so a restarted server (or a plain CLI run) warm-starts from the
serving cache and vice versa.

:class:`ServerMetrics` aggregates per-request
:class:`repro.obs.Collector` counter snapshots and request latencies
under one lock; the ``/metrics`` endpoint serves its snapshot.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..locality.engine import AnalysisCache
from ..obs import Reservoir

__all__ = ["SharedState", "ServerMetrics"]


class SharedState:
    """The warm :class:`AnalysisCache` plus its snapshot policy.

    ``snapshot_path=None`` disables persistence.  Otherwise the cache is
    loaded from the path at startup (missing/unreadable files load
    empty, exactly like ``AnalysisCache.load``) and saved back every
    ``snapshot_every`` completed analyses and on :meth:`close` — the
    graceful-drain path calls ``close`` after the last in-flight request
    finishes, so no warm entries are lost to a SIGTERM.
    """

    def __init__(
        self,
        snapshot_path: Optional[str] = None,
        snapshot_every: int = 16,
        cache: Optional[AnalysisCache] = None,
    ):
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.snapshot_path = snapshot_path
        self.snapshot_every = snapshot_every
        if cache is not None:
            self.cache = cache
        elif snapshot_path is not None:
            self.cache = AnalysisCache.load(snapshot_path)
        else:
            self.cache = AnalysisCache()
        self._lock = threading.Lock()
        self._completed_since_snapshot = 0
        self.snapshots_written = 0

    def note_completed(self) -> None:
        """Record one finished analysis; snapshot when the period elapses."""
        if self.snapshot_path is None:
            return
        with self._lock:
            self._completed_since_snapshot += 1
            due = self._completed_since_snapshot >= self.snapshot_every
            if due:
                self._completed_since_snapshot = 0
        if due:
            self.save_snapshot()

    def save_snapshot(self) -> bool:
        """Write the cache pickle now; False when persistence is off."""
        if self.snapshot_path is None:
            return False
        self.cache.save(self.snapshot_path)
        with self._lock:
            self.snapshots_written += 1
        return True

    def close(self) -> None:
        """Final snapshot (the drain path's last act)."""
        self.save_snapshot()

    def stats(self) -> dict:
        doc = self.cache.snapshot_stats()
        with self._lock:
            doc["snapshots_written"] = self.snapshots_written
        doc["snapshot_path"] = self.snapshot_path
        doc["snapshot_every"] = self.snapshot_every
        return doc


class ServerMetrics:
    """Lock-protected server-wide counters + latency percentiles."""

    def __init__(self, latency_window: int = 1024):
        self._lock = threading.Lock()
        self.counters: dict = {}
        self.responses: dict = {}  # HTTP status -> count
        self.latency = Reservoir(latency_window)

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def note_response(self, status: int) -> None:
        with self._lock:
            key = str(int(status))
            self.responses[key] = self.responses.get(key, 0) + 1

    def merge_counters(self, counters: dict) -> None:
        """Fold one request collector's counter snapshot into the totals."""
        with self._lock:
            for name, n in counters.items():
                key = f"pipeline.{name}"
                self.counters[key] = self.counters.get(key, 0) + n

    def observe_latency(self, seconds: float) -> None:
        self.latency.observe(seconds)

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(sorted(self.counters.items()))
            responses = dict(sorted(self.responses.items()))
        latency = self.latency.summary()
        for key in ("p50", "p95", "max"):
            if latency[key] is not None:
                latency[f"{key}_ms"] = round(latency.pop(key) * 1000.0, 3)
            else:
                latency[f"{key}_ms"] = latency.pop(key)
        return {
            "counters": counters,
            "responses": responses,
            "latency": latency,
        }
