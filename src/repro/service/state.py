"""Shared server state: the warm analysis cache and aggregated metrics.

Every request that reaches a worker runs against **one**
:class:`~repro.locality.engine.AnalysisCache` instance (thread-safe
since this PR), so the fingerprint memo warms monotonically across
requests and clients: the first TFFT2 analysis pays for every later
one, whichever thread serves it.  The cache is periodically pickled to
disk with the same payload format the ``--opt cache=FILE`` CLI path
uses, so a restarted server (or a plain CLI run) warm-starts from the
serving cache and vice versa.

:class:`ServerMetrics` aggregates per-request
:class:`repro.obs.Collector` counter snapshots and request latencies
under one lock; the ``/metrics`` endpoint serves its snapshot.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from ..locality.engine import AnalysisCache
from ..obs import Reservoir
from ..plan import PlanCache
from .config import ServiceConfig

__all__ = ["SharedState", "ServerMetrics"]


class SharedState:
    """The warm :class:`AnalysisCache` plus its snapshot policy.

    Constructed from one frozen :class:`ServiceConfig` — the same value
    the router ships to each worker — from which it resolves this
    process's (possibly shard-specific) snapshot paths.  With no
    snapshot paths persistence is off.  Otherwise the cache is loaded
    from disk at startup (missing/unreadable files load empty, exactly
    like ``AnalysisCache.load``) and saved back every
    ``config.snapshot_every`` completed analyses and on :meth:`close` —
    the graceful-drain path calls ``close`` after the last in-flight
    request finishes, so no warm entries are lost to a SIGTERM.  Both
    snapshot writes are atomic (temp + fsync + rename), so a drain
    interrupted mid-save still leaves a loadable file.

    The plan path adds the compiled-plan bundle (:mod:`repro.plan`):
    opened at boot — its memo banks installed immediately, so the first
    request of a restarted server replays instead of re-deriving — and
    saved on the same cadence.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        cache: Optional[AnalysisCache] = None,
    ):
        config = config if config is not None else ServiceConfig()
        self.config = config
        self.snapshot_path = config.resolved_snapshot_path()
        self.snapshot_every = config.snapshot_every
        self.plan_path = config.resolved_plan_path()
        for path in (self.snapshot_path, self.plan_path):
            if path is not None and os.path.dirname(path):
                os.makedirs(os.path.dirname(path), exist_ok=True)
        if cache is not None:
            self.cache = cache
        elif self.snapshot_path is not None:
            self.cache = AnalysisCache.load(self.snapshot_path)
        else:
            self.cache = AnalysisCache()
        if self.plan_path is not None:
            self.plan_cache = PlanCache.open(self.plan_path)
        else:
            self.plan_cache = PlanCache()
        self._lock = threading.Lock()
        self._completed_since_snapshot = 0
        self.snapshots_written = 0

    @property
    def _persistent(self) -> bool:
        return self.snapshot_path is not None or self.plan_path is not None

    def note_completed(self) -> None:
        """Record one finished analysis; snapshot when the period elapses."""
        if not self._persistent:
            return
        with self._lock:
            self._completed_since_snapshot += 1
            due = self._completed_since_snapshot >= self.snapshot_every
            if due:
                self._completed_since_snapshot = 0
        if due:
            self.save_snapshot()

    def save_snapshot(self) -> bool:
        """Write the snapshots now; False when persistence is off."""
        if not self._persistent:
            return False
        if self.snapshot_path is not None:
            self.cache.save(self.snapshot_path)
        if self.plan_path is not None:
            self.plan_cache.capture_banks()
            self.plan_cache.save(self.plan_path)
        with self._lock:
            self.snapshots_written += 1
        return True

    def close(self) -> None:
        """Final snapshot (the drain path's last act)."""
        self.save_snapshot()

    def stats(self) -> dict:
        doc = self.cache.snapshot_stats()
        with self._lock:
            doc["snapshots_written"] = self.snapshots_written
        doc["snapshot_path"] = self.snapshot_path
        doc["snapshot_every"] = self.snapshot_every
        doc["plan_path"] = self.plan_path
        doc["plan_cache"] = self.plan_cache.snapshot_stats()
        return doc


class ServerMetrics:
    """Lock-protected server-wide counters + latency percentiles."""

    def __init__(self, latency_window: int = 1024):
        self._lock = threading.Lock()
        self.counters: dict = {}
        self.responses: dict = {}  # HTTP status -> count
        self.latency = Reservoir(latency_window)

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def note_response(self, status: int) -> None:
        with self._lock:
            key = str(int(status))
            self.responses[key] = self.responses.get(key, 0) + 1

    def merge_counters(self, counters: dict) -> None:
        """Fold one request collector's counter snapshot into the totals."""
        with self._lock:
            for name, n in counters.items():
                key = f"pipeline.{name}"
                self.counters[key] = self.counters.get(key, 0) + n

    def observe_latency(self, seconds: float) -> None:
        self.latency.observe(seconds)

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(sorted(self.counters.items()))
            responses = dict(sorted(self.responses.items()))
        latency = self.latency.summary()
        for key in ("p50", "p95", "max"):
            if latency[key] is not None:
                latency[f"{key}_ms"] = round(latency.pop(key) * 1000.0, 3)
            else:
                latency[f"{key}_ms"] = latency.pop(key)
        return {
            "counters": counters,
            "responses": responses,
            "latency": latency,
        }
