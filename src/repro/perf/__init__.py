"""Performance harness: stage timings and the BENCH_perf.json trajectory."""

from .bench import (
    FULL_H,
    FULL_SIZES,
    LCG_H_VALUES,
    QUICK_H,
    QUICK_SIZES,
    check_lcg_regression,
    check_regression,
    main,
    run_benchmark,
    set_optimizations,
)

__all__ = [
    "FULL_H",
    "FULL_SIZES",
    "LCG_H_VALUES",
    "QUICK_H",
    "QUICK_SIZES",
    "check_lcg_regression",
    "check_regression",
    "main",
    "run_benchmark",
    "set_optimizations",
]
