"""Perf-regression harness: ``python -m repro bench-perf``.

Times every pipeline stage — IR build, ARD construction + coalescing,
LCG build, ILP solve, and both DSM execution modes — on the six-code
suite, in two configurations:

* **baseline** — the interpreted pre-optimization engine: expression
  memoization off, vectorized/compiled enumeration off, the executor
  restricted to the legacy affine-rectangular fast path.  This is the
  code path the repo shipped before the performance layer landed, kept
  runnable precisely so the speedup is measured, not remembered.
* **optimized** — everything on: interning + memoized algebra, compiled
  vectorized subscript evaluation, sampled refutation of ``is_nonneg``
  proof obligations, the fingerprint analysis cache behind the LCG
  builder, and the wide descriptor-first executor path.

The ``lcg`` stage is timed twice per code: cold, then ``lcg_warm`` — a
rebuild of a *fresh* program object, which in optimized mode answers
from the fingerprint analysis cache (in baseline mode it re-derives
everything, so the pair also measures the cache's win directly).

Three sections are recorded into ``BENCH_perf.json``:

* ``full`` — the §4.3 headline scale (H=64, TFFT2 at P=2**7); the
  committed numbers every future PR has to beat.
* ``quick`` — H=8 with small sizes, cheap enough for CI: the workflow
  reruns it and fails when the optimized total regresses by more than
  the configured factor against the committed file.
* ``lcg_full`` — optimized-only LCG-stage scaling at the full sizes for
  H in {16, 64}: cold + warm build times per code.  Cheap enough for CI
  (no baseline pass), guarded by ``--check-lcg``.

Speedups compare wall-clock totals of the two configurations over the
same stages on the same machine, so the ratio is meaningful even though
absolute times differ across hosts.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Mapping, Optional

__all__ = [
    "FULL_H",
    "FULL_SIZES",
    "LCG_H_VALUES",
    "QUICK_H",
    "QUICK_SIZES",
    "check_lcg_regression",
    "check_regression",
    "main",
    "run_benchmark",
    "set_optimizations",
]

FULL_H = 64
FULL_SIZES = {
    "tfft2": {"P": 128, "p": 7, "Q": 128, "q": 7},
    "jacobi": {"N": 8192},
    "swim": {"M": 128, "N": 128},
    "adi": {"M": 128, "N": 128},
    "mgrid": {"N": 8192, "n": 13},
    "tomcatv": {"M": 128, "N": 128},
    "redblack": {"N": 8192},
}

QUICK_H = 8
QUICK_SIZES = {
    "tfft2": {"P": 16, "p": 4, "Q": 16, "q": 4},
    "jacobi": {"N": 1024},
    "swim": {"M": 24, "N": 24},
    "adi": {"M": 24, "N": 24},
    "mgrid": {"N": 1024, "n": 10},
    "tomcatv": {"M": 24, "N": 24},
    "redblack": {"N": 1024},
}

STAGES = ("build", "ard", "lcg", "lcg_warm", "ilp", "exec_static", "exec_plan")

#: Processor counts for the optimized-only ``lcg_full`` scaling section.
LCG_H_VALUES = (16, 64)


def set_optimizations(enabled: bool) -> None:
    """Flip every performance-layer switch at once (and drop caches).

    Uses the internal default setters rather than the deprecated public
    shims — the harness intentionally moves process-wide state and
    should not spray DeprecationWarnings while doing so.
    """
    from ..dsm.executor import _set_fast_path_default
    from ..ir.interp import set_vectorized
    from ..locality.engine import _set_analysis_cache_default
    from ..symbolic import set_memoization
    from ..symbolic.refute import _set_refutation_default

    set_memoization(enabled)
    set_vectorized(enabled)
    _set_fast_path_default("wide" if enabled else "legacy")
    _set_refutation_default(enabled)
    _set_analysis_cache_default(enabled)
    clear_caches()


def clear_caches() -> None:
    """Reset memoization state so timed runs start cold.

    This includes the pre-existing structural ``is_nonneg`` cache: its
    keys are shared across freshly-built programs, so without clearing
    it whichever mode runs second would inherit a warm cache and the
    comparison would be meaningless.
    """
    from ..descriptors import coalesce as _coalesce
    from ..distribution import ilp as _ilp
    from ..locality import engine as _engine
    from ..locality import table1 as _table1
    from ..symbolic import clear_refutation_banks
    from ..symbolic import compile as _compile
    from ..symbolic import context as _context
    from ..symbolic import expr as _expr

    _expr._divide_exact_cached.cache_clear()
    _expr._shift_difference_cached.cache_clear()
    _expr._SUBS_CACHE.clear()
    _compile._compile_cached.cache_clear()
    _coalesce._COALESCE_CACHE.clear()
    _context._NONNEG_CACHE.clear()
    _table1.classify_edge.cache_clear()
    _ilp._EVAL_CACHE.clear()
    _engine.clear_analysis_cache()
    clear_refutation_banks()


def _time_code(name: str, env: Mapping[str, int], H: int) -> dict:
    """Per-stage wall-clock seconds for one code at one scale."""
    from ..codes import ALL_CODES
    from ..descriptors.ard import UnsupportedAccess, compute_ard
    from ..descriptors.coalesce import coalesce_row
    from ..distribution import extract_constraints, solve_enumerative
    from ..dsm import execute_static, execute_with_plan
    from ..locality import build_lcg

    builder, _, back_edges = ALL_CODES[name]
    stages: dict = {}

    t0 = time.perf_counter()
    prog = builder()
    stages["build"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    for phase in prog.phases:
        ctx = phase.loop_context(prog.context)
        for access in phase.accesses():
            try:
                coalesce_row(compute_ard(access, ctx), ctx)
            except UnsupportedAccess:
                pass
    stages["ard"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    lcg = build_lcg(prog, env=env, H_value=H, back_edges=back_edges)
    stages["lcg"] = time.perf_counter() - t0

    # Rebuild from a *fresh* program: fresh phase objects defeat every
    # per-object memo, so this measures exactly what the fingerprint
    # analysis cache (when enabled) buys a warm process.  The program
    # construction itself is not part of the LCG stage, so it stays
    # outside the timer.
    fresh = builder()
    t0 = time.perf_counter()
    build_lcg(fresh, env=env, H_value=H, back_edges=back_edges)
    stages["lcg_warm"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    constraints = extract_constraints(lcg)
    plan = solve_enumerative(constraints, env, H=H)
    stages["ilp"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    execute_static(prog, env, H)
    stages["exec_static"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    execute_with_plan(prog, lcg, plan, env, H)
    stages["exec_plan"] = time.perf_counter() - t0

    stages["total"] = sum(stages[s] for s in STAGES)
    return stages


def _run_mode(sizes: Mapping, H: int, optimized: bool, log) -> dict:
    set_optimizations(optimized)
    try:
        per_code: dict = {}
        for name in sorted(sizes):
            per_code[name] = _time_code(name, sizes[name], H)
            log(
                f"    {name:<10} {per_code[name]['total']:8.2f}s "
                f"({'optimized' if optimized else 'baseline'})"
            )
        return {
            "per_code": per_code,
            "total": sum(c["total"] for c in per_code.values()),
        }
    finally:
        set_optimizations(True)


def _run_section(sizes: Mapping, H: int, log) -> dict:
    optimized = _run_mode(sizes, H, True, log)
    baseline = _run_mode(sizes, H, False, log)
    return {
        "H": H,
        "sizes": {k: dict(v) for k, v in sizes.items()},
        "baseline": baseline,
        "optimized": optimized,
        "speedup": (
            baseline["total"] / optimized["total"]
            if optimized["total"] > 0
            else float("inf")
        ),
    }


def _time_lcg_only(name: str, env: Mapping[str, int], H: int) -> dict:
    """Cold + warm LCG build times for one code at one scale.

    Alongside the timings the record carries the engine's *trajectory*:
    how the warm build answered (edge-cache hits vs. lookups) and how
    the prover's queries resolved during the cold build (refuted /
    passed / declined) — so BENCH_perf.json tracks not just how fast
    the stage is but *why*.
    """
    from ..codes import ALL_CODES
    from ..locality import build_lcg
    from ..locality.engine import get_analysis_cache
    from ..symbolic import refutation_stats

    builder, _, back_edges = ALL_CODES[name]
    clear_caches()
    # Fresh program objects per build (defeating per-object memos), but
    # constructed outside the timers: the stage under test is build_lcg.
    first, second = builder(), builder()
    refute_before = refutation_stats()
    t0 = time.perf_counter()
    build_lcg(first, env=env, H_value=H, back_edges=back_edges)
    cold = time.perf_counter() - t0
    refute_after = refutation_stats()
    stats_cold = dict(get_analysis_cache().stats)
    t0 = time.perf_counter()
    build_lcg(second, env=env, H_value=H, back_edges=back_edges)
    warm = time.perf_counter() - t0
    stats_warm = dict(get_analysis_cache().stats)
    hits = stats_warm["edge_hits"] - stats_cold["edge_hits"]
    misses = stats_warm["edge_misses"] - stats_cold["edge_misses"]
    lookups = hits + misses
    return {
        "lcg": cold,
        "lcg_warm": warm,
        "warm_edge_hits": hits,
        "warm_edge_lookups": lookups,
        "warm_hit_rate": hits / lookups if lookups else None,
        "refute_cold": {
            key: refute_after[key] - refute_before[key]
            for key in ("refuted", "passed", "declined")
        },
    }


def _run_lcg_section(log) -> dict:
    """Optimized-only LCG-stage scaling at the full sizes, H in LCG_H_VALUES."""
    set_optimizations(True)
    per_H: dict = {}
    for H in LCG_H_VALUES:
        per_code: dict = {}
        for name in sorted(FULL_SIZES):
            per_code[name] = _time_lcg_only(name, FULL_SIZES[name], H)
        hits = sum(c["warm_edge_hits"] for c in per_code.values())
        lookups = sum(c["warm_edge_lookups"] for c in per_code.values())
        per_H[str(H)] = {
            "per_code": per_code,
            "total_cold": sum(c["lcg"] for c in per_code.values()),
            "total_warm": sum(c["lcg_warm"] for c in per_code.values()),
            "warm_hit_rate": hits / lookups if lookups else None,
            "refute_cold": {
                key: sum(
                    c["refute_cold"][key] for c in per_code.values()
                )
                for key in ("refuted", "passed", "declined")
            },
        }
        rate = per_H[str(H)]["warm_hit_rate"]
        log(
            f"    H={H:<3} lcg cold {per_H[str(H)]['total_cold']:7.3f}s "
            f"warm {per_H[str(H)]['total_warm']:7.3f}s "
            f"hit-rate {'n/a' if rate is None else f'{rate:.0%}'}"
        )
    return {"H_values": list(LCG_H_VALUES), "per_H": per_H}


def run_benchmark(
    quick_only: bool = False, log=lambda s: None, lcg_section=None
) -> dict:
    """Run the harness; returns the BENCH_perf.json payload.

    ``lcg_section`` forces the optimized-only ``lcg_full`` section on or
    off; by default it runs whenever the full section does.
    """
    result = {
        "schema": 3,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "stages": list(STAGES),
    }
    log(f"quick section (H={QUICK_H})")
    result["quick"] = _run_section(QUICK_SIZES, QUICK_H, log)
    log(f"  quick speedup: {result['quick']['speedup']:.2f}x")
    if lcg_section is None:
        lcg_section = not quick_only
    if lcg_section:
        log(f"lcg_full section (full sizes, H in {list(LCG_H_VALUES)})")
        result["lcg_full"] = _run_lcg_section(log)
    if not quick_only:
        log(f"full section (H={FULL_H}) — the baseline pass takes minutes")
        result["full"] = _run_section(FULL_SIZES, FULL_H, log)
        log(f"  full speedup: {result['full']['speedup']:.2f}x")
    return result


def check_regression(
    current: dict, committed: dict, max_regression: float
) -> Optional[str]:
    """Compare a fresh quick run against the committed baseline file.

    Returns an error string on regression, None when within bounds.
    Only the optimized-mode quick totals are compared — they are the
    numbers CI can afford to reproduce — and only the ratio matters, so
    the check is host-independent as long as one host produced both...
    which it did not; hence the generous factor.
    """
    try:
        committed_total = committed["quick"]["optimized"]["total"]
    except KeyError:
        return "committed BENCH_perf.json has no quick/optimized section"
    current_total = current["quick"]["optimized"]["total"]
    if committed_total <= 0:
        return None
    ratio = current_total / committed_total
    if ratio > max_regression:
        return (
            f"perf regression: quick optimized total {current_total:.2f}s "
            f"is {ratio:.2f}x the committed {committed_total:.2f}s "
            f"(allowed {max_regression:.2f}x)"
        )
    return None


def check_lcg_regression(
    current: dict,
    committed: dict,
    max_regression: float,
    min_hit_rate: Optional[float] = None,
) -> Optional[str]:
    """Compare the fresh ``lcg_full`` section against the committed file.

    Both the cold and warm totals are guarded, per H value: the cold
    total protects the sampled-refutation + engine speedups, the warm
    total protects the analysis cache specifically.  With
    ``min_hit_rate``, the *current run's* warm cache-hit rate is also
    asserted (when the run recorded one — schema-2 payloads did not), so
    a cache silently answering nothing can't hide behind a fast host.
    """
    try:
        committed_per_H = committed["lcg_full"]["per_H"]
    except KeyError:
        return "committed BENCH_perf.json has no lcg_full section"
    try:
        current_per_H = current["lcg_full"]["per_H"]
    except KeyError:
        return "current run has no lcg_full section"
    for H, committed_totals in sorted(committed_per_H.items()):
        current_totals = current_per_H.get(H)
        if current_totals is None:
            return f"current run is missing lcg_full H={H}"
        for key in ("total_cold", "total_warm"):
            if committed_totals[key] <= 0:
                continue
            ratio = current_totals[key] / committed_totals[key]
            if ratio > max_regression:
                return (
                    f"lcg perf regression at H={H}: {key} "
                    f"{current_totals[key]:.3f}s is {ratio:.2f}x the "
                    f"committed {committed_totals[key]:.3f}s "
                    f"(allowed {max_regression:.2f}x)"
                )
        if min_hit_rate is not None:
            rate = current_totals.get("warm_hit_rate")
            if rate is not None and rate < min_hit_rate:
                return (
                    f"lcg cache regression at H={H}: warm hit rate "
                    f"{rate:.1%} is below the required "
                    f"{min_hit_rate:.1%}"
                )
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-perf",
        description="Stage-level perf harness over the six-code suite.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="only the H=8 small-size section (CI smoke)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON payload to FILE (default: stdout)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a committed BENCH_perf.json; exit 1 on "
        "regression beyond --max-regression",
    )
    parser.add_argument(
        "--check-lcg", default=None, metavar="BASELINE",
        help="run the optimized-only lcg_full section and compare against "
        "a committed BENCH_perf.json; exit 1 on regression beyond "
        "--max-regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="allowed slowdown factor for --check/--check-lcg (default 2.0)",
    )
    parser.add_argument(
        "--min-cache-hit-rate", type=float, default=0.9,
        help="minimum warm edge-cache hit rate asserted by --check-lcg "
        "(default 0.9)",
    )
    args = parser.parse_args(argv)

    committed = None
    committed_lcg = None
    # fail before the (expensive) run, not after it
    if args.check is not None:
        try:
            with open(args.check) as fh:
                committed = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.check}: {exc}", file=sys.stderr)
            return 1
    if args.check_lcg is not None:
        try:
            with open(args.check_lcg) as fh:
                committed_lcg = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.check_lcg}: {exc}", file=sys.stderr)
            return 1

    checking = args.check is not None or args.check_lcg is not None
    result = run_benchmark(
        quick_only=args.quick or checking,
        log=lambda s: print(s, file=sys.stderr),
        lcg_section=True if args.check_lcg is not None else None,
    )
    payload = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    elif not checking:
        print(payload)

    if committed is not None:
        error = check_regression(result, committed, args.max_regression)
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        print(
            f"perf check ok: quick optimized total "
            f"{result['quick']['optimized']['total']:.2f}s vs committed "
            f"{committed['quick']['optimized']['total']:.2f}s",
            file=sys.stderr,
        )
    if committed_lcg is not None:
        error = check_lcg_regression(
            result,
            committed_lcg,
            args.max_regression,
            min_hit_rate=args.min_cache_hit_rate,
        )
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        top_H = LCG_H_VALUES[-1]
        totals = result["lcg_full"]["per_H"][str(top_H)]
        rate = totals.get("warm_hit_rate")
        print(
            f"lcg perf check ok: H={top_H} cold "
            f"{totals['total_cold']:.3f}s warm {totals['total_warm']:.3f}s "
            f"hit-rate {'n/a' if rate is None else f'{rate:.0%}'}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
