"""Perf-regression harness: ``python -m repro bench-perf``.

Times every pipeline stage — IR build, ARD construction + coalescing,
LCG build, ILP solve, and both DSM execution modes — on the six-code
suite, in two configurations:

* **baseline** — the interpreted pre-optimization engine: expression
  memoization off, vectorized/compiled enumeration off, the executor
  restricted to the legacy affine-rectangular fast path.  This is the
  code path the repo shipped before the performance layer landed, kept
  runnable precisely so the speedup is measured, not remembered.
* **optimized** — everything on: interning + memoized algebra, compiled
  vectorized subscript evaluation, sampled refutation of ``is_nonneg``
  proof obligations, the fingerprint analysis cache behind the LCG
  builder, and the wide descriptor-first executor path.

The ``lcg`` stage is timed twice per code: cold, then ``lcg_warm`` — a
rebuild of a *fresh* program object, which in optimized mode answers
from the fingerprint analysis cache (in baseline mode it re-derives
everything, so the pair also measures the cache's win directly).

Three sections are recorded into ``BENCH_perf.json``:

* ``full`` — the §4.3 headline scale (H=64, TFFT2 at P=2**7); the
  committed numbers every future PR has to beat.
* ``quick`` — H=8 with small sizes, cheap enough for CI: the workflow
  reruns it and fails when the optimized total regresses by more than
  the configured factor against the committed file.
* ``lcg_full`` — optimized-only LCG-stage scaling at the full sizes for
  H in {16, 64}: cold + warm build times per code.  Cheap enough for CI
  (no baseline pass), guarded by ``--check-lcg``.
* ``exec`` — the symbolic closed-form tier against wide enumeration at
  enumeration-hostile sizes (H=64): per-code static/plan speedups, a
  count-equality assertion, and the observed fallback counters.
  Guarded by ``--check-exec`` (tfft2 speedup floor + equality).
* ``exec_large_H`` — symbolic-only runs at H in {1024, 4096}: machine
  sizes where enumeration multiplies out but closed-form counting does
  not.  The H=4096 entry is the paper-scale result no enumerating tier
  ever produced.  Beyond ``LARGE_H_PLAN_MAX`` only ``execute_static``
  is timed: an all-to-all put *list* is Θ(H²) objects whatever tier
  counted it.
* ``exec_huge_N`` — symbolic-only static execution at ~2**20-element
  problem sizes per code.
* ``sweep`` — the session subsystem's reason to exist, measured: one
  warm :class:`repro.session.Session` sweeping a ≥16-point H × chunk
  grid against the same grid as independent cold ``analyze()`` calls,
  with per-point sha256 byte-identity asserted between the two paths.
  Guarded by ``--check-sweep`` (speedup floor + identity + a ≥2-point
  Pareto front).

Speedups compare wall-clock totals of the two configurations over the
same stages on the same machine, so the ratio is meaningful even though
absolute times differ across hosts.  Since schema 4 each section also
records ``stage_speedups`` — the per-stage baseline/optimized ratio —
so a future regression localises to a stage straight from CI output.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Mapping, Optional

__all__ = [
    "EXEC_H",
    "EXEC_SIZES",
    "FULL_H",
    "FULL_SIZES",
    "HUGE_N_SIZES",
    "LARGE_H_PLAN_MAX",
    "LARGE_H_VALUES",
    "LCG_H_VALUES",
    "QUICK_H",
    "QUICK_SIZES",
    "FRONT_GRID",
    "SWEEP_GRID",
    "check_exec",
    "check_lcg_regression",
    "check_regression",
    "check_sweep",
    "main",
    "run_benchmark",
    "set_optimizations",
]

FULL_H = 64
FULL_SIZES = {
    "tfft2": {"P": 128, "p": 7, "Q": 128, "q": 7},
    "jacobi": {"N": 8192},
    "swim": {"M": 128, "N": 128},
    "adi": {"M": 128, "N": 128},
    "mgrid": {"N": 8192, "n": 13},
    "tomcatv": {"M": 128, "N": 128},
    "redblack": {"N": 8192},
}

QUICK_H = 8
QUICK_SIZES = {
    "tfft2": {"P": 16, "p": 4, "Q": 16, "q": 4},
    "jacobi": {"N": 1024},
    "swim": {"M": 24, "N": 24},
    "adi": {"M": 24, "N": 24},
    "mgrid": {"N": 1024, "n": 10},
    "tomcatv": {"M": 24, "N": 24},
    "redblack": {"N": 1024},
}

STAGES = (
    "build",
    "ard",
    "lcg",
    "lcg_warm",
    "ilp",
    "exec_static",
    "exec_plan",
    "exec_symbolic",
)

#: Processor counts for the optimized-only ``lcg_full`` scaling section.
LCG_H_VALUES = (16, 64)

#: The execution-tier section: enumeration-hostile sizes at H=64, where
#: the wide tier's cost is address volume and the symbolic tier's is
#: descriptor count.
EXEC_H = 64
EXEC_SIZES = {
    "tfft2": {"P": 1024, "p": 10, "Q": 1024, "q": 10},
    "jacobi": {"N": 1 << 20},
    "swim": {"M": 1024, "N": 1024},
    "adi": {"M": 1024, "N": 1024},
    "mgrid": {"N": 1 << 20, "n": 20},
    "tomcatv": {"M": 1024, "N": 1024},
    "redblack": {"N": 1 << 20},
}

#: Machine sizes for the symbolic-only large-H section.  The paper's
#: T3D topped out at H=256; enumeration cost scales with H while the
#: closed-form tier's does not, so these are first-ever results.
LARGE_H_VALUES = (1024, 4096)

#: Largest H at which the large-H section also times plan execution.
#: The put *list* of an all-to-all redistribution is Θ(H²) Python
#: objects whatever tier computed the counts — ~16M puts per edge at
#: H=4096, tens of GB — so beyond this the section reports the
#: closed-form locality counts (``execute_static``) only.
LARGE_H_PLAN_MAX = 1024

#: ~2**20-element (and beyond: tfft2's arrays hold 2*P*Q = 2**23)
#: problem sizes for the symbolic-only huge-N section.
HUGE_N_SIZES = {
    "tfft2": {"P": 2048, "p": 11, "Q": 2048, "q": 11},
    "jacobi": {"N": 1 << 20},
    "swim": {"M": 1024, "N": 1024},
    "adi": {"M": 1024, "N": 1024},
    "mgrid": {"N": 1 << 20, "n": 20},
    "tomcatv": {"M": 1024, "N": 1024},
    "redblack": {"N": 1 << 20},
}


#: The ``sweep`` section's timed workload: tfft2 at the quick size — the
#: code whose cold analysis is dominated by cacheable edge work (~15x
#: cold/warm ratio) — over a 16-point H × chunk-pin grid.  Two H values,
#: not four: each new H re-binds every edge fingerprint, so H values
#: are the expensive axis of a session sweep and chunk pins the cheap
#: one.
SWEEP_CODE = "tfft2"
SWEEP_H = 8
SWEEP_GRID = {"H": [4, 8], "chunk:F1_DO_100_RCFFTZ": [1, 2, 3, 4, 5, 6, 7, 8]}

#: The Pareto-front probe: an unrestricted sweep collapses to a
#: one-point front (the model's feasible-maximum chunk minimizes both
#: axes), so conflicting layouts are exposed by pinning jacobi's sweep
#: phase across a capped range at fixed H — communication falls and
#: imbalance rises as the pin grows.
FRONT_CODE = "jacobi"
FRONT_GRID = {"chunk:F_sweep": list(range(1, 13))}


def set_optimizations(enabled: bool) -> None:
    """Flip every performance-layer switch at once (and drop caches).

    Uses the internal default setters rather than the deprecated public
    shims — the harness intentionally moves process-wide state and
    should not spray DeprecationWarnings while doing so.
    """
    from ..dsm.executor import _set_fast_path_default
    from ..ir.interp import set_vectorized
    from ..locality.engine import _set_analysis_cache_default
    from ..symbolic import set_memoization
    from ..symbolic.refute import _set_refutation_default

    set_memoization(enabled)
    set_vectorized(enabled)
    _set_fast_path_default("wide" if enabled else "legacy")
    _set_refutation_default(enabled)
    _set_analysis_cache_default(enabled)
    clear_caches()


def clear_caches() -> None:
    """Reset memoization state so timed runs start cold.

    This includes the pre-existing structural ``is_nonneg`` cache: its
    keys are shared across freshly-built programs, so without clearing
    it whichever mode runs second would inherit a warm cache and the
    comparison would be meaningless.
    """
    from ..descriptors import coalesce as _coalesce
    from ..distribution import ilp as _ilp
    from ..locality import balanced as _balanced
    from ..locality import engine as _engine
    from ..locality import table1 as _table1
    from ..plan import clear_plan_cache
    from ..symbolic import clear_refutation_banks
    from ..symbolic import compile as _compile
    from ..symbolic import context as _context
    from ..symbolic import expr as _expr

    _expr._divide_exact_cached.cache_clear()
    _expr._shift_difference_cached.cache_clear()
    _expr._SUBS_CACHE.clear()
    _compile.clear_compile_memo()
    _coalesce._COALESCE_CACHE.clear()
    _context._NONNEG_CACHE.clear()
    _balanced._DECIDE_CACHE.clear()
    _table1.classify_edge.cache_clear()
    _ilp._EVAL_CACHE.clear()
    _engine.clear_analysis_cache()
    clear_refutation_banks()
    clear_plan_cache()


def _time_code(name: str, env: Mapping[str, int], H: int) -> dict:
    """Per-stage wall-clock seconds for one code at one scale."""
    from ..codes import ALL_CODES
    from ..descriptors.ard import UnsupportedAccess, compute_ard
    from ..descriptors.coalesce import coalesce_row
    from ..distribution import extract_constraints, solve_enumerative
    from ..dsm import execute_static, execute_with_plan
    from ..locality import build_lcg

    builder, _, back_edges = ALL_CODES[name]
    stages: dict = {}

    t0 = time.perf_counter()
    prog = builder()
    stages["build"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    for phase in prog.phases:
        ctx = phase.loop_context(prog.context)
        for access in phase.accesses():
            try:
                coalesce_row(compute_ard(access, ctx), ctx)
            except UnsupportedAccess:
                pass
    stages["ard"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    lcg = build_lcg(prog, env=env, H_value=H, back_edges=back_edges)
    stages["lcg"] = time.perf_counter() - t0

    # Rebuild from a *fresh* program: fresh phase objects defeat every
    # per-object memo, so this measures exactly what the fingerprint
    # analysis cache (when enabled) buys a warm process.  The program
    # construction itself is not part of the LCG stage, so it stays
    # outside the timer.
    fresh = builder()
    t0 = time.perf_counter()
    build_lcg(fresh, env=env, H_value=H, back_edges=back_edges)
    stages["lcg_warm"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    constraints = extract_constraints(lcg)
    plan = solve_enumerative(constraints, env, H=H)
    stages["ilp"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    execute_static(prog, env, H)
    stages["exec_static"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    execute_with_plan(prog, lcg, plan, env, H)
    stages["exec_plan"] = time.perf_counter() - t0

    # The closed-form tier, forced explicitly so the stage is measured
    # in both configurations regardless of the process default.
    t0 = time.perf_counter()
    execute_static(prog, env, H, fast_path="symbolic")
    execute_with_plan(prog, lcg, plan, env, H, fast_path="symbolic")
    stages["exec_symbolic"] = time.perf_counter() - t0

    stages["total"] = sum(stages[s] for s in STAGES)
    return stages


def _run_mode(sizes: Mapping, H: int, optimized: bool, log) -> dict:
    set_optimizations(optimized)
    try:
        per_code: dict = {}
        for name in sorted(sizes):
            per_code[name] = _time_code(name, sizes[name], H)
            log(
                f"    {name:<10} {per_code[name]['total']:8.2f}s "
                f"({'optimized' if optimized else 'baseline'})"
            )
        return {
            "per_code": per_code,
            "total": sum(c["total"] for c in per_code.values()),
        }
    finally:
        set_optimizations(True)


def _stage_speedups(baseline: dict, optimized: dict) -> dict:
    """Per-stage baseline/optimized ratio, summed across codes.

    A regression in the end-to-end total only says *something* got
    slower; the per-stage ratios say *which* stage, straight from the
    committed payload, with no re-run under a profiler.
    """
    speedups: dict = {}
    for stage in STAGES:
        base = sum(c[stage] for c in baseline["per_code"].values())
        opt = sum(c[stage] for c in optimized["per_code"].values())
        speedups[stage] = base / opt if opt > 0 else float("inf")
    return speedups


def _run_section(sizes: Mapping, H: int, log) -> dict:
    optimized = _run_mode(sizes, H, True, log)
    baseline = _run_mode(sizes, H, False, log)
    return {
        "H": H,
        "sizes": {k: dict(v) for k, v in sizes.items()},
        "baseline": baseline,
        "optimized": optimized,
        "speedup": (
            baseline["total"] / optimized["total"]
            if optimized["total"] > 0
            else float("inf")
        ),
        "stage_speedups": _stage_speedups(baseline, optimized),
    }


def _time_lcg_only(name: str, env: Mapping[str, int], H: int) -> dict:
    """Cold, warm and plan-driven-cold LCG build times for one code.

    Alongside the timings the record carries the engine's *trajectory*:
    how the warm build answered (edge-cache hits vs. lookups) and how
    the prover's queries resolved during the cold build (refuted /
    passed / declined) — so BENCH_perf.json tracks not just how fast
    the stage is but *why*.

    The ``lcg_cold_plan`` stage measures the compiled-plan cold path
    end to end: a fully cold recording build (untimed) compiles the
    plan, the bundle round-trips through an on-disk snapshot, every
    memo table is cleared, and the timed build then starts from
    *nothing but the loaded bundle* — exactly the restarted-process
    scenario the plan cache exists for.  ``cold_speedup`` is the plain
    cold time over this plan-driven cold time.
    """
    import os
    import tempfile

    from ..codes import ALL_CODES
    from ..locality import build_lcg
    from ..locality.engine import get_analysis_cache
    from ..plan import PlanCache, PlanRecorder, install_plan
    from ..symbolic import refutation_stats

    builder, _, back_edges = ALL_CODES[name]
    clear_caches()
    # Fresh program objects per build (defeating per-object memos), but
    # constructed outside the timers: the stage under test is build_lcg.
    first, second, third, fourth = (
        builder(), builder(), builder(), builder(),
    )
    refute_before = refutation_stats()
    t0 = time.perf_counter()
    build_lcg(first, env=env, H_value=H, back_edges=back_edges)
    cold = time.perf_counter() - t0
    refute_after = refutation_stats()
    stats_cold = dict(get_analysis_cache().stats)
    t0 = time.perf_counter()
    build_lcg(second, env=env, H_value=H, back_edges=back_edges)
    warm = time.perf_counter() - t0
    stats_warm = dict(get_analysis_cache().stats)
    hits = stats_warm["edge_hits"] - stats_cold["edge_hits"]
    misses = stats_warm["edge_misses"] - stats_cold["edge_misses"]
    lookups = hits + misses

    # Recording build: fully cold (the hook must see every query as the
    # build actually issues it), untimed — it stands in for the one
    # prior process that compiled the plan.
    clear_caches()
    recorder = PlanRecorder()
    build_lcg(third, env=env, H_value=H, back_edges=back_edges)
    compiled = recorder.finish(
        third, env=env, H_value=H, back_edges=back_edges
    )
    bundle = PlanCache()
    bundle.put(compiled)
    bundle.capture_banks()
    fd, bundle_path = tempfile.mkstemp(prefix="repro-bench-plan-")
    os.close(fd)
    cold_plan = None
    try:
        bundle.save(bundle_path)
        clear_caches()
        loaded = PlanCache.load(bundle_path)
        loaded.install_banks()
        replay = loaded.get(compiled.key) if compiled is not None else None
        if replay is not None and install_plan(replay):
            t0 = time.perf_counter()
            build_lcg(
                fourth, env=env, H_value=H, back_edges=back_edges,
                plan=replay,
            )
            cold_plan = time.perf_counter() - t0
    finally:
        os.unlink(bundle_path)

    return {
        "lcg": cold,
        "lcg_warm": warm,
        "lcg_cold_plan": cold_plan,
        "cold_speedup": (
            cold / cold_plan if cold_plan else None
        ),
        "warm_edge_hits": hits,
        "warm_edge_lookups": lookups,
        "warm_hit_rate": hits / lookups if lookups else None,
        "refute_cold": {
            key: refute_after[key] - refute_before[key]
            for key in ("refuted", "passed", "declined")
        },
    }


def _run_lcg_section(log) -> dict:
    """Optimized-only LCG-stage scaling at the full sizes, H in LCG_H_VALUES."""
    set_optimizations(True)
    per_H: dict = {}
    for H in LCG_H_VALUES:
        per_code: dict = {}
        for name in sorted(FULL_SIZES):
            per_code[name] = _time_lcg_only(name, FULL_SIZES[name], H)
        hits = sum(c["warm_edge_hits"] for c in per_code.values())
        lookups = sum(c["warm_edge_lookups"] for c in per_code.values())
        plan_times = [
            c["lcg_cold_plan"]
            for c in per_code.values()
            if c["lcg_cold_plan"] is not None
        ]
        total_cold = sum(c["lcg"] for c in per_code.values())
        total_cold_plan = sum(plan_times) if plan_times else None
        per_H[str(H)] = {
            "per_code": per_code,
            "total_cold": total_cold,
            "total_warm": sum(c["lcg_warm"] for c in per_code.values()),
            "total_cold_plan": total_cold_plan,
            "cold_speedup": (
                total_cold / total_cold_plan
                if total_cold_plan and len(plan_times) == len(per_code)
                else None
            ),
            "warm_hit_rate": hits / lookups if lookups else None,
            "refute_cold": {
                key: sum(
                    c["refute_cold"][key] for c in per_code.values()
                )
                for key in ("refuted", "passed", "declined")
            },
        }
        rate = per_H[str(H)]["warm_hit_rate"]
        speedup = per_H[str(H)]["cold_speedup"]
        log(
            f"    H={H:<3} lcg cold {per_H[str(H)]['total_cold']:7.3f}s "
            f"warm {per_H[str(H)]['total_warm']:7.3f}s "
            f"plan-cold "
            f"{'n/a' if total_cold_plan is None else f'{total_cold_plan:7.3f}s'} "
            f"(x{'n/a' if speedup is None else f'{speedup:.1f}'}) "
            f"hit-rate {'n/a' if rate is None else f'{rate:.0%}'}"
        )
    return {"H_values": list(LCG_H_VALUES), "per_H": per_H}


def _exec_prepare(name: str, env: Mapping[str, int], H: int):
    """Build program + LCG + plan once, outside the executor timers."""
    from ..codes import ALL_CODES
    from ..distribution import extract_constraints, solve_enumerative
    from ..locality import build_lcg

    builder, _, back_edges = ALL_CODES[name]
    prog = builder()
    lcg = build_lcg(prog, env=env, H_value=H, back_edges=back_edges)
    plan = solve_enumerative(extract_constraints(lcg), env, H=H)
    return prog, lcg, plan


def _stats_equal(ref, cand) -> bool:
    """Byte-identical ExecStats: phase counts and put aggregation."""
    import numpy as np

    if len(ref.phases) != len(cand.phases):
        return False
    for pr, pc in zip(ref.phases, cand.phases):
        for field in ("local", "remote", "iterations"):
            a = np.asarray(getattr(pr, field))
            b = np.asarray(getattr(pc, field))
            if a.shape != b.shape or not np.array_equal(a, b):
                return False
    ref_comms = getattr(ref, "comms", ())
    cand_comms = getattr(cand, "comms", ())
    if len(ref_comms) != len(cand_comms):
        return False
    for cr, cc in zip(ref_comms, cand_comms):
        if (cr.array, cr.edge, cr.pattern, cr.puts) != (
            cc.array,
            cc.edge,
            cc.pattern,
            cc.puts,
        ):
            return False
    return True


def _run_exec_section(log) -> dict:
    """Symbolic closed-form tier vs wide enumeration, head to head.

    Enumeration-hostile sizes at H=EXEC_H: the wide tier pays for every
    address, the symbolic tier for every descriptor.  Each code records
    both tiers' static/plan wall-clock, the speedups, a byte-identity
    verdict on the resulting counts + put lists, and the fallback
    counters the symbolic run emitted (a silent fallback would show up
    here as a fast-but-actually-wide "speedup" of ~1x).
    """
    from ..dsm import execute_static, execute_with_plan
    from ..obs import Collector

    set_optimizations(True)
    per_code: dict = {}
    for name in sorted(EXEC_SIZES):
        env = EXEC_SIZES[name]
        prog, lcg, plan = _exec_prepare(name, env, EXEC_H)
        ctx = prog.context
        prev_obs = getattr(ctx, "obs", None)
        sym_obs = Collector(metrics=True)
        try:
            ctx.obs = sym_obs
            t0 = time.perf_counter()
            sym_static = execute_static(prog, env, EXEC_H, fast_path="symbolic")
            t_sym_static = time.perf_counter() - t0
            t0 = time.perf_counter()
            sym_plan = execute_with_plan(
                prog, lcg, plan, env, EXEC_H, fast_path="symbolic"
            )
            t_sym_plan = time.perf_counter() - t0
        finally:
            ctx.obs = prev_obs
        t0 = time.perf_counter()
        wide_static = execute_static(prog, env, EXEC_H, fast_path="wide")
        t_wide_static = time.perf_counter() - t0
        t0 = time.perf_counter()
        wide_plan = execute_with_plan(
            prog, lcg, plan, env, EXEC_H, fast_path="wide"
        )
        t_wide_plan = time.perf_counter() - t0

        counters = sym_obs.metrics_snapshot().get("counters", {})
        per_code[name] = {
            "wide_static": t_wide_static,
            "wide_plan": t_wide_plan,
            "symbolic_static": t_sym_static,
            "symbolic_plan": t_sym_plan,
            "speedup_static": (
                t_wide_static / t_sym_static if t_sym_static > 0 else float("inf")
            ),
            "speedup_plan": (
                t_wide_plan / t_sym_plan if t_sym_plan > 0 else float("inf")
            ),
            "counts_equal": (
                _stats_equal(wide_static, sym_static)
                and _stats_equal(wide_plan, sym_plan)
            ),
            "fallbacks": {
                key: counters[key]
                for key in sorted(counters)
                if key.startswith(("dsm.fast_path.", "dsm.symbolic."))
            },
        }
        rec = per_code[name]
        log(
            f"    {name:<10} static {rec['speedup_static']:8.1f}x "
            f"plan {rec['speedup_plan']:8.1f}x "
            f"equal={rec['counts_equal']}"
        )
    return {
        "H": EXEC_H,
        "sizes": {k: dict(v) for k, v in EXEC_SIZES.items()},
        "per_code": per_code,
    }


def _run_large_H_section(log, H_values=LARGE_H_VALUES) -> dict:
    """Symbolic-only execution at machine sizes enumeration can't reach.

    tfft2's env is grown with the machine (same rule as ``repro check``)
    so the ILP stays feasible; the per-code record keeps the env it
    actually ran, plus the analysis (LCG + ILP) time separately from the
    executor times — at these H values the solver is the slow part and
    should not be billed to the execution tier.
    """
    from ..check import env_for
    from ..dsm import execute_static, execute_with_plan

    set_optimizations(True)
    per_H: dict = {}
    for H in H_values:
        per_code: dict = {}
        for name in sorted(EXEC_SIZES):
            env = env_for(name, EXEC_SIZES[name], H)
            t0 = time.perf_counter()
            prog, lcg, plan = _exec_prepare(name, env, H)
            t_analysis = time.perf_counter() - t0
            t0 = time.perf_counter()
            execute_static(prog, env, H, fast_path="symbolic")
            t_static = time.perf_counter() - t0
            per_code[name] = {
                "env": dict(env),
                "analysis": t_analysis,
                "symbolic_static": t_static,
            }
            if H <= LARGE_H_PLAN_MAX:
                t0 = time.perf_counter()
                execute_with_plan(
                    prog, lcg, plan, env, H, fast_path="symbolic"
                )
                per_code[name]["symbolic_plan"] = time.perf_counter() - t0
            t_plan = per_code[name].get("symbolic_plan")
            log(
                f"    H={H:<5} {name:<10} static {t_static:7.3f}s "
                f"plan {'skipped' if t_plan is None else f'{t_plan:7.3f}s'} "
                f"(analysis {t_analysis:.2f}s)"
            )
        per_H[str(H)] = {
            "per_code": per_code,
            "total_static": sum(
                c["symbolic_static"] for c in per_code.values()
            ),
            "total_plan": (
                sum(c["symbolic_plan"] for c in per_code.values())
                if H <= LARGE_H_PLAN_MAX
                else None
            ),
        }
    return {"H_values": list(H_values), "per_H": per_H}


def _run_huge_N_section(log) -> dict:
    """Symbolic-only static execution at ~2**20-element problem sizes."""
    from ..codes import ALL_CODES
    from ..dsm import execute_static

    set_optimizations(True)
    per_code: dict = {}
    for name in sorted(HUGE_N_SIZES):
        env = HUGE_N_SIZES[name]
        builder, _, _ = ALL_CODES[name]
        prog = builder()
        t0 = time.perf_counter()
        execute_static(prog, env, EXEC_H, fast_path="symbolic")
        per_code[name] = {"symbolic_static": time.perf_counter() - t0}
        log(
            f"    {name:<10} static "
            f"{per_code[name]['symbolic_static']:7.3f}s"
        )
    return {
        "H": EXEC_H,
        "sizes": {k: dict(v) for k, v in HUGE_N_SIZES.items()},
        "per_code": per_code,
        "total_static": sum(
            c["symbolic_static"] for c in per_code.values()
        ),
    }


def _run_sweep_section(log) -> dict:
    """One warm session vs independent cold solves over the same grid.

    Two measurements.  The *timed* half runs ``SWEEP_GRID`` through one
    :class:`repro.session.Session` and then re-runs the same grid as
    independent cold ``analyze()`` calls — fresh program object, every
    cache and memo cleared per point.  Program construction and cache
    clearing happen *outside* the cold timers, so the ratio understates
    the session's win rather than inflating it; per-point sha256s are
    compared across the two paths, and the speedup only counts if the
    bytes are identical.  Both paths run analysis-only
    (``execute=False``): a layout sweep needs the objective, not the
    DSM simulation, and the simulation is unmemoizable cost paid
    equally by both sides.

    The *untimed* half sweeps ``FRONT_GRID`` (a capped chunk-pin range
    at fixed H) through a second session and records the Pareto front —
    the ≥2-conflicting-layouts property the gate asserts.
    """
    import hashlib
    import itertools

    from .. import AnalysisOptions, analyze
    from ..codes import ALL_CODES
    from ..document import dumps_canonical
    from ..options import format_chunk_bounds
    from ..session.state import Session
    from ..session.sweep import run_sweep

    set_optimizations(True)
    env = QUICK_SIZES[SWEEP_CODE]
    builder, _, back_edges = ALL_CODES[SWEEP_CODE]

    # -- warm path: one session, one sweep ------------------------------
    clear_caches()
    program = builder()
    t0 = time.perf_counter()
    session = Session(
        program, env, SWEEP_H, back_edges=back_edges, execute=False
    )
    session.solve()
    out = run_sweep(session, SWEEP_GRID)
    t_session = time.perf_counter() - t0
    session.close()

    # -- cold path: the same grid, nothing shared -----------------------
    keys = sorted(SWEEP_GRID)
    t_cold = 0.0
    cold_shas: list = []
    for combo in itertools.product(*(SWEEP_GRID[k] for k in keys)):
        params = dict(zip(keys, combo))
        H = params.get("H", SWEEP_H)
        bounds = {
            k.partition(":")[2]: (v, v)
            for k, v in params.items()
            if k.startswith("chunk:")
        }
        options = AnalysisOptions(
            trace=False,
            metrics=False,
            plan=False,
            plan_cache=None,
            analysis_cache=False,
            chunk_bounds=format_chunk_bounds(bounds) or None,
        )
        prog_cold = builder()
        clear_caches()
        try:
            t0 = time.perf_counter()
            result = analyze(
                prog_cold,
                env=env,
                H=H,
                back_edges=back_edges,
                execute=False,
                options=options,
            )
            t_cold += time.perf_counter() - t0
        except (ValueError, RuntimeError):
            cold_shas.append(None)
            continue
        doc = result.to_document()
        doc["metrics"] = None
        doc["trace"] = None
        cold_shas.append(
            hashlib.sha256(dumps_canonical(doc).encode()).hexdigest()
        )

    session_shas = [p.get("sha256") for p in out["points"]]
    identical = session_shas == cold_shas

    # -- Pareto probe: conflicting layouts from a capped pin sweep ------
    front_env = QUICK_SIZES[FRONT_CODE]
    front_builder, _, front_back = ALL_CODES[FRONT_CODE]
    front_session = Session(
        front_builder(), front_env, SWEEP_H, back_edges=front_back,
        execute=False,
    )
    front_out = run_sweep(front_session, FRONT_GRID)
    front_session.close()
    front_points = [
        {
            "params": front_out["points"][i]["params"],
            "communication": front_out["points"][i]["communication"],
            "imbalance": front_out["points"][i]["imbalance"],
        }
        for i in front_out["front"]
    ]

    section = {
        "code": SWEEP_CODE,
        "env": dict(env),
        "grid": out["grid"],
        "points": len(out["points"]),
        "feasible_points": out["reuse"]["feasible_points"],
        "session_seconds": t_session,
        "cold_seconds": t_cold,
        "speedup": t_cold / t_session if t_session > 0 else float("inf"),
        "identical": identical,
        "reuse": out["reuse"],
        "front_code": FRONT_CODE,
        "front_grid": front_out["grid"],
        "front_size": len(front_out["front"]),
        "front": front_points,
    }
    log(
        f"    {SWEEP_CODE:<10} {section['points']} points: session "
        f"{t_session:.2f}s vs cold {t_cold:.2f}s "
        f"({section['speedup']:.1f}x), identical={identical}; "
        f"{FRONT_CODE} pin-sweep front={section['front_size']}"
    )
    return section


def run_benchmark(
    quick_only: bool = False,
    log=lambda s: None,
    lcg_section=None,
    exec_section=None,
    sweep_section=None,
) -> dict:
    """Run the harness; returns the BENCH_perf.json payload.

    ``lcg_section`` forces the optimized-only ``lcg_full`` section on or
    off; by default it runs whenever the full section does.  Likewise
    ``exec_section`` for the symbolic-vs-wide ``exec`` section; the
    symbolic-only ``exec_large_H`` / ``exec_huge_N`` sections run with
    the full section, and ``sweep_section`` the session-vs-cold sweep
    comparison.
    """
    result = {
        "schema": 6,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "stages": list(STAGES),
    }
    log(f"quick section (H={QUICK_H})")
    result["quick"] = _run_section(QUICK_SIZES, QUICK_H, log)
    log(f"  quick speedup: {result['quick']['speedup']:.2f}x")
    if lcg_section is None:
        lcg_section = not quick_only
    if lcg_section:
        log(f"lcg_full section (full sizes, H in {list(LCG_H_VALUES)})")
        result["lcg_full"] = _run_lcg_section(log)
    if exec_section is None:
        exec_section = not quick_only
    if exec_section:
        log(f"exec section (symbolic vs wide, H={EXEC_H})")
        result["exec"] = _run_exec_section(log)
    if sweep_section is None:
        sweep_section = not quick_only
    if sweep_section:
        log(f"sweep section (one session vs cold analyze per grid point)")
        result["sweep"] = _run_sweep_section(log)
    if not quick_only:
        log(f"full section (H={FULL_H}) — the baseline pass takes minutes")
        result["full"] = _run_section(FULL_SIZES, FULL_H, log)
        log(f"  full speedup: {result['full']['speedup']:.2f}x")
        log(f"exec_large_H section (symbolic only, H in {list(LARGE_H_VALUES)})")
        result["exec_large_H"] = _run_large_H_section(log)
        log("exec_huge_N section (symbolic only)")
        result["exec_huge_N"] = _run_huge_N_section(log)
    return result


def check_regression(
    current: dict, committed: dict, max_regression: float
) -> Optional[str]:
    """Compare a fresh quick run against the committed baseline file.

    Returns an error string on regression, None when within bounds.
    Only the optimized-mode quick totals are compared — they are the
    numbers CI can afford to reproduce — and only the ratio matters, so
    the check is host-independent as long as one host produced both...
    which it did not; hence the generous factor.
    """
    try:
        committed_total = committed["quick"]["optimized"]["total"]
    except KeyError:
        return "committed BENCH_perf.json has no quick/optimized section"
    current_total = current["quick"]["optimized"]["total"]
    if committed_total <= 0:
        return None
    ratio = current_total / committed_total
    if ratio > max_regression:
        return (
            f"perf regression: quick optimized total {current_total:.2f}s "
            f"is {ratio:.2f}x the committed {committed_total:.2f}s "
            f"(allowed {max_regression:.2f}x)"
        )
    return None


def check_lcg_regression(
    current: dict,
    committed: dict,
    max_regression: float,
    min_hit_rate: Optional[float] = None,
    min_cold_speedup: Optional[float] = None,
) -> Optional[str]:
    """Compare the fresh ``lcg_full`` section against the committed file.

    The cold, warm and plan-driven-cold totals are guarded, per H
    value: the cold total protects the sampled-refutation + engine
    speedups, the warm total the analysis cache, the plan-cold total
    the compiled-plan replay path.  With ``min_hit_rate``, the
    *current run's* warm cache-hit rate is also asserted (when the run
    recorded one — schema-2 payloads did not), so a cache silently
    answering nothing can't hide behind a fast host; likewise
    ``min_cold_speedup`` asserts the current run's cold/plan-cold
    ratio — a within-run ratio, so host-independent.
    """
    try:
        committed_per_H = committed["lcg_full"]["per_H"]
    except KeyError:
        return "committed BENCH_perf.json has no lcg_full section"
    try:
        current_per_H = current["lcg_full"]["per_H"]
    except KeyError:
        return "current run has no lcg_full section"
    for H, committed_totals in sorted(committed_per_H.items()):
        current_totals = current_per_H.get(H)
        if current_totals is None:
            return f"current run is missing lcg_full H={H}"
        for key in ("total_cold", "total_warm", "total_cold_plan"):
            committed_value = committed_totals.get(key)
            current_value = current_totals.get(key)
            if not committed_value or current_value is None:
                # schema-4 payloads have no plan-cold totals; the
                # min_cold_speedup floor below still guards the stage.
                continue
            ratio = current_value / committed_value
            if ratio > max_regression:
                return (
                    f"lcg perf regression at H={H}: {key} "
                    f"{current_value:.3f}s is {ratio:.2f}x the "
                    f"committed {committed_value:.3f}s "
                    f"(allowed {max_regression:.2f}x)"
                )
        if min_hit_rate is not None:
            rate = current_totals.get("warm_hit_rate")
            if rate is not None and rate < min_hit_rate:
                return (
                    f"lcg cache regression at H={H}: warm hit rate "
                    f"{rate:.1%} is below the required "
                    f"{min_hit_rate:.1%}"
                )
        if min_cold_speedup is not None:
            speedup = current_totals.get("cold_speedup")
            if speedup is None:
                return (
                    f"lcg plan regression at H={H}: no plan-driven cold "
                    f"build completed (plan rejected or not installed)"
                )
            if speedup < min_cold_speedup:
                return (
                    f"lcg plan regression at H={H}: cold speedup "
                    f"{speedup:.2f}x is below the required "
                    f"{min_cold_speedup:.2f}x"
                )
    return None


def check_exec(current: dict, min_speedup: float) -> Optional[str]:
    """Guard the symbolic tier from the fresh ``exec`` section.

    Two assertions, both host-independent: the symbolic counts (and put
    lists) must be byte-identical to wide enumeration for *every* code,
    and tfft2 — the enumeration-hostile headline — must hold its
    speedup floor on both execution modes.  No committed file needed:
    the ratio is measured within one run on one host.
    """
    try:
        per_code = current["exec"]["per_code"]
    except KeyError:
        return "current run has no exec section"
    for name, rec in sorted(per_code.items()):
        if not rec["counts_equal"]:
            return (
                f"exec tier soundness regression: symbolic counts differ "
                f"from wide enumeration for {name}"
            )
    tfft2 = per_code.get("tfft2")
    if tfft2 is None:
        return "exec section has no tfft2 entry"
    for key in ("speedup_static", "speedup_plan"):
        if tfft2[key] < min_speedup:
            return (
                f"exec perf regression: tfft2 {key} {tfft2[key]:.1f}x is "
                f"below the required {min_speedup:.1f}x"
            )
    return None


def check_sweep(current: dict, min_speedup: float) -> Optional[str]:
    """Guard the session subsystem from the fresh ``sweep`` section.

    Host-independent, no committed file: the grid must hold at least 16
    points, every per-point document must be byte-identical (sha256)
    between the warm-session path and the independent cold path, the
    Pareto front must hold ≥2 genuinely conflicting layouts, and the
    one-session sweep must beat the cold path by ``min_speedup``.
    """
    try:
        section = current["sweep"]
    except KeyError:
        return "current run has no sweep section"
    if section["points"] < 16:
        return (
            f"sweep section covered only {section['points']} grid points; "
            f"the gate requires at least 16"
        )
    if not section["identical"]:
        return (
            "sweep soundness regression: per-point documents differ "
            "between the warm session and independent cold analyze()"
        )
    if section["front_size"] < 2:
        return (
            f"sweep Pareto regression: front has {section['front_size']} "
            f"point(s); the chunk-pin grid must expose >= 2 conflicting "
            f"layouts"
        )
    if section["speedup"] < min_speedup:
        return (
            f"sweep perf regression: one-session sweep is only "
            f"{section['speedup']:.1f}x the cold path "
            f"(required {min_speedup:.1f}x)"
        )
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-perf",
        description="Stage-level perf harness over the six-code suite.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="only the H=8 small-size section (CI smoke)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON payload to FILE (default: stdout)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a committed BENCH_perf.json; exit 1 on "
        "regression beyond --max-regression",
    )
    parser.add_argument(
        "--check-lcg", default=None, metavar="BASELINE",
        help="run the optimized-only lcg_full section and compare against "
        "a committed BENCH_perf.json; exit 1 on regression beyond "
        "--max-regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="allowed slowdown factor for --check/--check-lcg (default 2.0)",
    )
    parser.add_argument(
        "--min-cache-hit-rate", type=float, default=0.9,
        help="minimum warm edge-cache hit rate asserted by --check-lcg "
        "(default 0.9)",
    )
    parser.add_argument(
        "--min-cold-speedup", type=float, default=5.0,
        help="minimum plan-driven cold-build speedup (plain cold over "
        "plan-cold, within one run) asserted by --check-lcg "
        "(default 5.0; generous vs the ~16x measured)",
    )
    parser.add_argument(
        "--check-exec", action="store_true",
        help="run the symbolic-vs-wide exec section and exit 1 unless "
        "counts are byte-identical on every code and tfft2 holds "
        "--min-exec-speedup on both execution modes",
    )
    parser.add_argument(
        "--min-exec-speedup", type=float, default=20.0,
        help="tfft2 static/plan speedup floor asserted by --check-exec "
        "(default 20.0; generous vs the ~100x measured, for CI hosts)",
    )
    parser.add_argument(
        "--check-sweep", action="store_true",
        help="run the session-sweep section and exit 1 unless the "
        "one-session grid sweep is byte-identical to independent cold "
        "analyze() calls, yields a >=2-point Pareto front, and holds "
        "--min-sweep-speedup",
    )
    parser.add_argument(
        "--min-sweep-speedup", type=float, default=5.0,
        help="speedup floor for the one-session sweep over independent "
        "cold analyze() calls, asserted by --check-sweep (default 5.0)",
    )
    parser.add_argument(
        "--exec-smoke", type=int, default=None, metavar="H",
        help="run only the symbolic-only large-H section at the given H "
        "(CI smoke; wrap in a hard timeout)",
    )
    args = parser.parse_args(argv)

    if args.exec_smoke is not None:
        set_optimizations(True)
        section = _run_large_H_section(
            lambda s: print(s, file=sys.stderr), (args.exec_smoke,)
        )
        payload = json.dumps(
            {"schema": 6, "exec_large_H": section}, indent=2, sort_keys=True
        )
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(payload)
        totals = section["per_H"][str(args.exec_smoke)]
        plan_total = totals["total_plan"]
        print(
            f"exec smoke ok: H={args.exec_smoke} static "
            f"{totals['total_static']:.3f}s plan "
            f"{'skipped' if plan_total is None else f'{plan_total:.3f}s'}",
            file=sys.stderr,
        )
        return 0

    committed = None
    committed_lcg = None
    # fail before the (expensive) run, not after it
    if args.check is not None:
        try:
            with open(args.check) as fh:
                committed = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.check}: {exc}", file=sys.stderr)
            return 1
    if args.check_lcg is not None:
        try:
            with open(args.check_lcg) as fh:
                committed_lcg = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.check_lcg}: {exc}", file=sys.stderr)
            return 1

    checking = (
        args.check is not None
        or args.check_lcg is not None
        or args.check_exec
        or args.check_sweep
    )
    result = run_benchmark(
        quick_only=args.quick or checking,
        log=lambda s: print(s, file=sys.stderr),
        lcg_section=True if args.check_lcg is not None else None,
        exec_section=True if args.check_exec else None,
        sweep_section=True if args.check_sweep else None,
    )
    payload = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    elif not checking:
        print(payload)

    if committed is not None:
        error = check_regression(result, committed, args.max_regression)
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        print(
            f"perf check ok: quick optimized total "
            f"{result['quick']['optimized']['total']:.2f}s vs committed "
            f"{committed['quick']['optimized']['total']:.2f}s",
            file=sys.stderr,
        )
    if committed_lcg is not None:
        error = check_lcg_regression(
            result,
            committed_lcg,
            args.max_regression,
            min_hit_rate=args.min_cache_hit_rate,
            min_cold_speedup=args.min_cold_speedup,
        )
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        top_H = LCG_H_VALUES[-1]
        totals = result["lcg_full"]["per_H"][str(top_H)]
        rate = totals.get("warm_hit_rate")
        speedup = totals.get("cold_speedup")
        print(
            f"lcg perf check ok: H={top_H} cold "
            f"{totals['total_cold']:.3f}s warm {totals['total_warm']:.3f}s "
            f"plan-cold x"
            f"{'n/a' if speedup is None else f'{speedup:.1f}'} "
            f"hit-rate {'n/a' if rate is None else f'{rate:.0%}'}",
            file=sys.stderr,
        )
    if args.check_exec:
        error = check_exec(result, args.min_exec_speedup)
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        tfft2 = result["exec"]["per_code"]["tfft2"]
        print(
            f"exec check ok: tfft2 static {tfft2['speedup_static']:.1f}x "
            f"plan {tfft2['speedup_plan']:.1f}x, counts byte-identical "
            f"on all codes",
            file=sys.stderr,
        )
    if args.check_sweep:
        error = check_sweep(result, args.min_sweep_speedup)
        if error is not None:
            print(error, file=sys.stderr)
            return 1
        sweep = result["sweep"]
        print(
            f"sweep check ok: {sweep['points']} points {sweep['speedup']:.1f}x "
            f"over cold, byte-identical, Pareto front of "
            f"{sweep['front_size']}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
