"""Spec-level greedy minimiser for failing fuzz programs.

A failing program is only useful once it is small: the committed
regression tests are minimized repros, not 40-line random nests.  The
shrinker works on the generator's :class:`~repro.fuzz.generator.Spec`
(never on source text), so every candidate re-renders to a parseable
program by construction and minimisation cannot get stuck fighting the
parser.

``shrink(prog, failing)`` repeats a fixed, deterministic transformation
order to a fixpoint, keeping a candidate whenever ``failing`` still
holds for it (first-improvement greedy):

1. drop a whole phase,
2. drop a statement from any (non-singleton) body,
3. unwrap a guard — replace it with its body,
4. flatten an inner loop — splice its body up with the loop index
   pinned to its first value,
5. trim an assignment's argument list to one reference,
6. simplify a subscript — drop a term or zero the offset.

Transformations only ever remove or simplify, and each acceptance
strictly decreases the candidate's size measure, so the fixpoint loop
terminates.  The predicate sees fully re-finalised programs (array
extents recomputed, env rebuilt), exactly what the driver would run.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator

from .generator import (
    Assign,
    GeneratedProgram,
    Guard,
    Loop,
    Ref,
    Spec,
    Subscript,
    from_spec,
)

__all__ = ["shrink", "spec_size"]


def spec_size(spec: Spec) -> int:
    """Size measure the shrinker strictly decreases: spec node count."""

    def stmts(body):
        n = 0
        for s in body:
            n += 1
            if isinstance(s, (Loop, Guard)):
                n += stmts(s.body)
            elif isinstance(s, Assign):
                n += len(s.rhs)
                n += sum(len(r.subscript.terms) for r in (s.lhs, *s.rhs))
                n += sum(
                    1
                    for r in (s.lhs, *s.rhs)
                    if r.subscript.offset_val != 0
                )
        return n

    return sum(1 + stmts(ph.loop.body) for ph in spec.phases)


def _pin_index(stmt, index: str, value: int):
    """Rewrite ``stmt`` with loop ``index`` fixed to ``value``."""
    if isinstance(stmt, Assign):
        return Assign(
            _pin_ref(stmt.lhs, index, value),
            tuple(_pin_ref(r, index, value) for r in stmt.rhs),
        )
    if isinstance(stmt, Guard):
        return Guard(
            _pin_sub(stmt.cond_left, index, value),
            stmt.cond_op,
            _pin_sub(stmt.cond_right, index, value),
            [_pin_index(s, index, value) for s in stmt.body],
        )
    if isinstance(stmt, Loop):
        out = copy.copy(stmt)
        out.body = [_pin_index(s, index, value) for s in stmt.body]
        return out
    return stmt


def _pin_ref(ref: Ref, index: str, value: int) -> Ref:
    return Ref(ref.array, _pin_sub(ref.subscript, index, value))


def _pin_sub(sub: Subscript, index: str, value: int) -> Subscript:
    terms = tuple(t for t in sub.terms if t.var != index)
    if len(terms) == len(sub.terms):
        return sub
    folded = sub.offset_val + sum(
        t.coef_val * value for t in sub.terms if t.var == index
    )
    if folded < 0:
        # A pinned mirror term can dip below zero; clamp — shrink
        # candidates need only be *valid*, not equivalent.
        folded = 0
    return Subscript(terms, str(folded), folded)


def _bodies(spec: Spec) -> Iterator[tuple]:
    """Yield every (container, body-list) pair, outermost first."""
    for phase in spec.phases:
        stack = [phase.loop]
        while stack:
            node = stack.pop(0)
            yield node, node.body
            for s in node.body:
                if isinstance(s, (Loop, Guard)):
                    stack.append(s)


def _candidates(spec: Spec) -> Iterator[Spec]:
    """One-edit variants of ``spec``, cheapest-win (biggest cut) first."""
    # 1. drop a phase
    if len(spec.phases) > 1:
        for i in range(len(spec.phases)):
            cand = copy.deepcopy(spec)
            del cand.phases[i]
            yield cand

    # 2. drop a statement (keep every body non-empty)
    for c_idx, (_, body) in enumerate(_bodies(spec)):
        if len(body) < 2:
            continue
        for s_idx in range(len(body)):
            cand = copy.deepcopy(spec)
            _, cand_body = list(_bodies(cand))[c_idx]
            del cand_body[s_idx]
            yield cand

    # 3. unwrap a guard  /  4. flatten an inner loop
    for c_idx, (_, body) in enumerate(_bodies(spec)):
        for s_idx, stmt in enumerate(body):
            if isinstance(stmt, Guard):
                cand = copy.deepcopy(spec)
                _, cand_body = list(_bodies(cand))[c_idx]
                inner = cand_body[s_idx].body
                cand_body[s_idx : s_idx + 1] = inner
                yield cand
            elif isinstance(stmt, Loop) and not stmt.parallel:
                cand = copy.deepcopy(spec)
                _, cand_body = list(_bodies(cand))[c_idx]
                loop = cand_body[s_idx]
                pinned = [
                    _pin_index(s, loop.index, loop.trip_range[0])
                    for s in loop.body
                ]
                cand_body[s_idx : s_idx + 1] = pinned
                yield cand

    # 5. trim an assignment's arguments  /  6. simplify a subscript
    for c_idx, (_, body) in enumerate(_bodies(spec)):
        for s_idx, stmt in enumerate(body):
            if not isinstance(stmt, Assign):
                continue
            if len(stmt.rhs) > 1:
                for keep in range(len(stmt.rhs)):
                    cand = copy.deepcopy(spec)
                    _, cand_body = list(_bodies(cand))[c_idx]
                    a = cand_body[s_idx]
                    cand_body[s_idx] = Assign(a.lhs, (a.rhs[keep],))
                    yield cand
            refs = [("lhs", None)] + [("rhs", k) for k in range(len(stmt.rhs))]
            for slot, k in refs:
                ref = stmt.lhs if slot == "lhs" else stmt.rhs[k]
                sub = ref.subscript
                edits = []
                if len(sub.terms) > 1:
                    for drop in range(len(sub.terms)):
                        edits.append(
                            Subscript(
                                sub.terms[:drop] + sub.terms[drop + 1 :],
                                sub.offset_text,
                                sub.offset_val,
                            )
                        )
                if sub.offset_val != 0 and sub.terms:
                    edits.append(Subscript(sub.terms))
                for new_sub in edits:
                    cand = copy.deepcopy(spec)
                    _, cand_body = list(_bodies(cand))[c_idx]
                    a = cand_body[s_idx]
                    new_ref = Ref(ref.array, new_sub)
                    if slot == "lhs":
                        cand_body[s_idx] = Assign(new_ref, a.rhs)
                    else:
                        rhs = list(a.rhs)
                        rhs[k] = new_ref
                        cand_body[s_idx] = Assign(a.lhs, tuple(rhs))
                    yield cand


def shrink(
    prog: GeneratedProgram,
    failing: Callable[[GeneratedProgram], bool],
    max_steps: int = 1000,
) -> GeneratedProgram:
    """Minimise ``prog`` while ``failing(candidate)`` stays true.

    ``failing`` must already hold for ``prog`` itself (the driver only
    shrinks confirmed failures); it is expected to swallow its own
    exceptions — a candidate that crashes the predicate is skipped.
    """
    current = prog
    for _ in range(max_steps):
        for cand_spec in _candidates(current.spec):
            if spec_size(cand_spec) >= spec_size(current.spec):
                continue
            cand = from_spec(cand_spec)
            try:
                still_failing = failing(cand)
            except Exception:
                continue
            if still_failing:
                current = cand
                break
        else:
            return current  # no accepted candidate: fixpoint
    return current
