"""Randomized differential testing of the whole analysis pipeline.

The benchmark suite exercises the shapes the paper names; the fuzzer
exercises the shapes nobody thought to name.  A seeded generator
(:mod:`repro.fuzz.generator`) emits random DO-nests inside the
analyzable language — imperfect nests, guards, symbolic strides,
triangular and ``2**L`` bounds, zero-trip and negative-step loops —
renders them to the mini-Fortran front end, and the driver
(:mod:`repro.fuzz.driver`) pushes each program through every
differential oracle in :mod:`repro.check` plus a serial-vs-parallel
engine byte-identity check.  Failures are minimised at the spec level
(:mod:`repro.fuzz.shrink`) into committable repros.

Everything is deterministic in the seed: CI reproduces any nightly
failure with ``python -m repro fuzz --seeds <seed>``.
"""

from .corpus import CorpusError, Fixture, load_corpus, parse_fixture, write_corpus
from .driver import CaseOutcome, FuzzReport, run_case, run_fuzz
from .generator import GeneratedProgram, generate, render_fixture
from .shrink import shrink

__all__ = [
    "CaseOutcome",
    "CorpusError",
    "Fixture",
    "FuzzReport",
    "GeneratedProgram",
    "generate",
    "load_corpus",
    "parse_fixture",
    "render_fixture",
    "run_case",
    "run_fuzz",
    "shrink",
    "write_corpus",
]
