"""Fuzz driver — random programs through the differential oracles.

For each seed the driver generates a program, parses the rendered
source back through the real front end, and pushes it through the same
oracles CI runs on the benchmark suite, at every requested machine
size:

* ``check_descriptors`` — PD/ID enumeration vs interpreter truth,
* serial vs parallel engine **byte-identity** on the canonical result
  document,
* ``check_lcg`` — Table 1 label re-derivation plus L/C traffic promises
  under execution,
* ``check_exec_tier`` — symbolic closed-form accounting vs wide
  enumeration,
* ``check_session`` (sampled — it is the slowest oracle) — incremental
  session documents vs cold analyses.

Outcomes are classified per case: ``pass`` (all clean, no notes),
``fallback`` (clean, but a *documented* degradation fired — e.g. a
non-self-contained PD fell back to interpreter enumeration),
``mismatch`` (an oracle disagreed: a soundness bug), ``error`` (a stage
raised — also a bug, in the engine or the generator).  Mismatching and
erroring cases are minimised with :func:`repro.fuzz.shrink.shrink`
before being reported, so the JSON artifact of a nightly run carries
committable repros, not raw noise.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .generator import GeneratedProgram, generate, render_fixture
from .shrink import shrink

__all__ = ["CaseOutcome", "FuzzReport", "run_case", "run_fuzz"]

DEFAULT_H = (16, 64)

#: Every Nth seed additionally runs the session oracle (slow: it
#: drives edits and a sweep through a live Session per case).
SESSION_SAMPLE = 10

#: Note substrings that mark a *documented degradation* — a sound
#: conservative path the engine took because the descriptor algebra
#: does not cover the shape.  Purely informational notes (fast-path
#: usage counters and the like) do not demote a case from "pass".
FALLBACK_MARKERS = (
    "fallback",
    "non-self-contained",
    "inapplicable",
    "taken as covering",
)


@dataclass
class CaseOutcome:
    """One seed's classification with the evidence that produced it."""

    seed: int
    name: str
    status: str  # "pass" | "fallback" | "mismatch" | "error"
    notes: list = field(default_factory=list)  # documented fallbacks
    mismatches: list = field(default_factory=list)  # rendered oracle hits
    error: Optional[str] = None  # traceback tail for status == "error"
    minimized: Optional[str] = None  # shrunk fixture for failing cases

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "name": self.name,
            "status": self.status,
            "notes": list(self.notes),
            "mismatches": list(self.mismatches),
            "error": self.error,
            "minimized": self.minimized,
        }


@dataclass
class FuzzReport:
    """Aggregate of one fuzz run, JSON-able for the CI artifact."""

    H_values: tuple
    cases: list = field(default_factory=list)

    @property
    def counts(self) -> dict:
        out = {"pass": 0, "fallback": 0, "mismatch": 0, "error": 0}
        for case in self.cases:
            out[case.status] += 1
        return out

    @property
    def ok(self) -> bool:
        counts = self.counts
        return counts["mismatch"] == 0 and counts["error"] == 0

    def failing(self) -> list:
        return [c for c in self.cases if c.status in ("mismatch", "error")]

    def to_json(self) -> dict:
        return {
            "H": list(self.H_values),
            "counts": self.counts,
            "ok": self.ok,
            "cases": [c.to_json() for c in self.cases],
        }

    def render(self) -> str:
        counts = self.counts
        lines = [
            f"fuzz: {len(self.cases)} cases at H={list(self.H_values)} — "
            f"{counts['pass']} pass, {counts['fallback']} fallback, "
            f"{counts['mismatch']} mismatch, {counts['error']} error"
        ]
        for case in self.failing():
            lines.append(f"  seed {case.seed} [{case.status}]")
            for m in case.mismatches[:4]:
                lines.append(f"    {m}")
            if case.error:
                lines.append(f"    {case.error}")
            if case.minimized:
                lines.append("    minimized repro:")
                lines.extend(
                    f"      {src_line}"
                    for src_line in case.minimized.splitlines()
                )
        return "\n".join(lines)


def _probe(prog: GeneratedProgram, H_values: Sequence[int], *, session: bool):
    """Run one generated program through every oracle.

    Returns ``(notes, mismatches)``; raises when a stage itself blows
    up (classified as ``error`` by the caller).
    """
    from .. import analyze
    from ..check.descriptor_oracle import check_descriptors
    from ..check.exec_oracle import check_exec_tier
    from ..check.lcg_oracle import check_lcg
    from ..check.session_oracle import check_session
    from ..document import dumps_canonical, result_document
    from ..ir.parser import parse_and_lower

    program = parse_and_lower(prog.source)
    notes: list = []
    mismatches: list = []

    def collect(report, H):
        notes.extend(f"H={H} {n}" for n in report.notes)
        mismatches.extend(
            f"H={H} {m.kind} {m.phase}/{m.array}: {m.detail}"
            for m in report.mismatches
        )

    desc = check_descriptors(program, prog.env, program_name=prog.name)
    collect(desc, "*")

    for H in H_values:
        serial = analyze(
            program, env=prog.env, H=H, options="engine=serial"
        )
        parallel = analyze(
            program, env=prog.env, H=H, options="engine=parallel"
        )
        doc_s = dumps_canonical(result_document(serial))
        doc_p = dumps_canonical(result_document(parallel))
        if doc_s != doc_p:
            mismatches.append(
                f"H={H} engine.byte_identity: serial and parallel engines "
                f"produced different canonical documents"
            )
        collect(
            check_lcg(
                program, prog.env, H, program_name=prog.name, result=serial
            ),
            H,
        )
        collect(
            check_exec_tier(
                program, prog.env, H, program_name=prog.name, result=serial
            ),
            H,
        )
        if session:
            collect(
                check_session(program, prog.env, H, program_name=prog.name),
                H,
            )
    return notes, mismatches


def run_case(
    seed: int,
    H_values: Sequence[int] = DEFAULT_H,
    *,
    session: Optional[bool] = None,
    shrink_failures: bool = True,
) -> CaseOutcome:
    """Generate, oracle-check and classify one seed."""
    prog = generate(seed)
    if session is None:
        session = seed % SESSION_SAMPLE == 0
    outcome = _classify(prog, H_values, session=session)
    if outcome.status in ("mismatch", "error") and shrink_failures:
        outcome.minimized = render_fixture(
            shrink(prog, _failing_predicate(H_values, session=session))
        )
    return outcome


def _classify(
    prog: GeneratedProgram, H_values: Sequence[int], *, session: bool
) -> CaseOutcome:
    try:
        notes, mismatches = _probe(prog, H_values, session=session)
    except Exception:
        tail = traceback.format_exc().strip().splitlines()[-1]
        return CaseOutcome(
            seed=prog.seed, name=prog.name, status="error", error=tail
        )
    if mismatches:
        status = "mismatch"
    elif any(m in n for n in notes for m in FALLBACK_MARKERS):
        status = "fallback"
    else:
        status = "pass"
    return CaseOutcome(
        seed=prog.seed,
        name=prog.name,
        status=status,
        notes=notes,
        mismatches=mismatches,
    )


def _failing_predicate(
    H_values: Sequence[int], *, session: bool
) -> Callable[[GeneratedProgram], bool]:
    def failing(candidate: GeneratedProgram) -> bool:
        try:
            _, mismatches = _probe(candidate, H_values, session=session)
        except Exception:
            return True
        return bool(mismatches)

    return failing


def run_fuzz(
    seeds: Sequence[int],
    H_values: Sequence[int] = DEFAULT_H,
    *,
    shrink_failures: bool = True,
    progress: Optional[Callable[[CaseOutcome], None]] = None,
) -> FuzzReport:
    """Sweep ``seeds`` through the oracles; return the aggregate report."""
    report = FuzzReport(H_values=tuple(H_values))
    for seed in seeds:
        outcome = run_case(
            seed, H_values, shrink_failures=shrink_failures
        )
        report.cases.append(outcome)
        if progress is not None:
            progress(outcome)
    return report
