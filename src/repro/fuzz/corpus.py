"""The committed fuzz corpus: generated fixtures checked into the repo.

The generator is deterministic, so a corpus file is just the seed's
rendered program frozen in time: a ``! env:`` header carrying the
concrete parameter values, a ``! seed:`` header recording provenance,
and the mini-Fortran source.  Freezing them serves two purposes the
live generator cannot:

* the corpus count (bundled ``repro.codes`` entries + these fixtures)
  is a reviewable artifact, not a function of generator drift — if a
  generator change alters what a seed produces, the byte-identity test
  over these files fails and the change is forced to justify itself;
* external tools (editors, the parser's own tests, future mutation
  fuzzing) can consume the programs without importing the generator.

Fixtures are regenerated with :func:`write_corpus`, never edited by
hand.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..errors import ReproError

__all__ = [
    "CorpusError",
    "Fixture",
    "corpus_dir",
    "load_corpus",
    "parse_fixture",
    "write_corpus",
]


class CorpusError(ReproError, ValueError):
    """A corpus fixture is missing or structurally invalid."""


@dataclass(frozen=True)
class Fixture:
    """One corpus file: provenance headers plus parseable source."""

    name: str
    seed: int
    env: Dict[str, int]
    source: str


def corpus_dir(root: str) -> str:
    """The generated-fixture directory under a repo checkout ``root``."""
    return os.path.join(root, "corpus", "generated")


def parse_fixture(text: str, name: str = "<fixture>") -> Fixture:
    """Parse a fixture file: ``!``-comment headers, then the program.

    The ``env`` and ``seed`` headers are mandatory — a fixture without
    provenance cannot be re-derived or differentially checked, so the
    loader refuses it rather than guessing defaults.
    """
    env: Dict[str, int] = {}
    seed = None
    lines = text.splitlines()
    body_start = 0
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped.startswith("!"):
            body_start = i
            break
        header = stripped.lstrip("!").strip()
        if header.startswith("env:"):
            payload = header[len("env:"):].strip()
            for item in filter(None, (p.strip() for p in payload.split(","))):
                key, _, value = item.partition("=")
                if not key or not value.lstrip("-").isdigit():
                    raise CorpusError(
                        f"{name}: malformed env entry {item!r} "
                        "(expected name=integer)"
                    )
                env[key.strip()] = int(value)
        elif header.startswith("seed:"):
            payload = header[len("seed:"):].strip()
            if not payload.isdigit():
                raise CorpusError(f"{name}: malformed seed header {payload!r}")
            seed = int(payload)
    else:
        body_start = len(lines)
    if seed is None:
        raise CorpusError(f"{name}: missing '! seed:' header")
    if not env:
        raise CorpusError(f"{name}: missing or empty '! env:' header")
    source = "\n".join(lines[body_start:])
    if not source.strip():
        raise CorpusError(f"{name}: no program body after headers")
    if not source.endswith("\n"):
        source += "\n"
    return Fixture(name=name, seed=seed, env=env, source=source)


def load_corpus(directory: str) -> List[Fixture]:
    """Load every ``*.f`` fixture in ``directory``, sorted by filename."""
    if not os.path.isdir(directory):
        raise CorpusError(f"corpus directory not found: {directory}")
    fixtures = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".f"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as fh:
            fixtures.append(parse_fixture(fh.read(), name=filename))
    if not fixtures:
        raise CorpusError(f"no *.f fixtures in {directory}")
    return fixtures


def write_corpus(directory: str, seeds: Iterable[int]) -> List[str]:
    """(Re)generate fixture files for ``seeds``; returns written paths."""
    from .generator import generate, render_fixture

    os.makedirs(directory, exist_ok=True)
    paths = []
    for seed in seeds:
        path = os.path.join(directory, f"seed_{seed:04d}.f")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(render_fixture(generate(seed)))
        paths.append(path)
    return paths
