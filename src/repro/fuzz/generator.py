"""Seeded random DO-nest generator for the soundness fuzzer.

Programs are generated at the **spec level** — small dataclasses for
loops, guards and assignments — and only rendered to mini-Fortran at
the end.  The spec is what the shrinker transforms: deleting a phase,
unwrapping a guard or flattening an inner loop are structural edits
that always re-render to a parseable program, which is what makes
minimisation terminate instead of fighting a text-level parser.

Everything is driven by one ``random.Random(seed)``: the same seed
produces byte-identical source, which is the contract CI relies on to
reproduce a nightly failure from its seed alone.

The generator stays inside the analyzable language on purpose:

* every phase has exactly one ``doall`` whose trip count (≥ the largest
  machine size the driver sweeps) keeps Eq. 7 feasible;
* subscripts are affine in the in-scope indices, with coefficients that
  may be *symbolic* (``N * i + j`` column-major flattening) — the
  descriptor algebra's documented fallbacks are outcomes, not crashes;
* array extents are computed from the generated subscripts' concrete
  ranges, so the interpreter and the DSM executor never index out of
  bounds;
* inner loops draw from the corner-case pool the paper's algebra has
  to survive: triangular bounds, ``2**L`` bounds, explicit ``step``
  clauses, negative strides and zero-trip ranges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Assign",
    "GeneratedProgram",
    "Guard",
    "Loop",
    "Phase",
    "Ref",
    "Spec",
    "generate",
    "render",
]


# --------------------------------------------------------------------------
# Spec model


@dataclass(frozen=True)
class Term:
    """``coef * var`` with the coefficient's concrete value carried."""

    coef_text: str
    coef_val: int
    var: str


@dataclass(frozen=True)
class Subscript:
    """Affine subscript: ``sum(terms) + offset``."""

    terms: tuple = ()
    offset_text: str = "0"
    offset_val: int = 0

    def render(self) -> str:
        pos, neg = [], []
        for t in self.terms:
            if t.coef_val < 0:
                # only -1 coefficients are generated; render them as a
                # subtraction so the source never needs unary minus
                neg.append(t.var)
            elif t.coef_text == "1":
                pos.append(t.var)
            else:
                pos.append(f"{t.coef_text} * {t.var}")
        if self.offset_text != "0" or not pos:
            pos.insert(0, self.offset_text) if neg else pos.append(
                self.offset_text
            )
        text = " + ".join(pos)
        for var in neg:
            text += f" - {var}"
        return text

    def bounds(self, ranges: dict) -> tuple:
        """(min, max) over the concrete index ``ranges`` {var: (lo, hi)}."""
        lo = hi = self.offset_val
        for t in self.terms:
            a, b = ranges[t.var]
            vals = (t.coef_val * a, t.coef_val * b)
            lo += min(vals)
            hi += max(vals)
        return lo, hi


@dataclass(frozen=True)
class Ref:
    array: str
    subscript: Subscript

    def render(self) -> str:
        return f"{self.array}({self.subscript.render()})"


@dataclass
class Assign:
    lhs: Ref
    rhs: tuple = ()

    def render(self, indent: str) -> list:
        args = ", ".join(r.render() for r in self.rhs) or self.lhs.render()
        return [f"{indent}{self.lhs.render()} = f({args})"]


@dataclass
class Guard:
    cond_left: Subscript
    cond_op: str
    cond_right: Subscript
    body: list = field(default_factory=list)

    def render(self, indent: str) -> list:
        lines = [
            f"{indent}if ({self.cond_left.render()} {self.cond_op} "
            f"{self.cond_right.render()}) then"
        ]
        for stmt in self.body:
            lines.extend(stmt.render(indent + "  "))
        lines.append(f"{indent}end if")
        return lines


@dataclass
class Loop:
    index: str
    lo_text: str
    hi_text: str
    lo_val: int
    hi_val: int
    step: Optional[int] = None
    parallel: bool = False
    body: list = field(default_factory=list)

    @property
    def trip_range(self) -> tuple:
        """Concrete (min, max) values the index takes (empty → (0, 0))."""
        step = self.step or 1
        if step > 0:
            if self.hi_val < self.lo_val:
                return (self.lo_val, self.lo_val)  # zero-trip placeholder
            last = self.lo_val + ((self.hi_val - self.lo_val) // step) * step
            return (self.lo_val, last)
        if self.hi_val > self.lo_val:
            return (self.lo_val, self.lo_val)
        last = self.lo_val + ((self.hi_val - self.lo_val) // step) * step
        return (last, self.lo_val)

    def render(self, indent: str) -> list:
        kw = "doall" if self.parallel else "do"
        head = f"{indent}{kw} {self.index} = {self.lo_text}, {self.hi_text}"
        if self.step is not None:
            head += f", {self.step}"
        lines = [head]
        for stmt in self.body:
            lines.extend(stmt.render(indent + "  "))
        lines.append(f"{indent}end {kw}")
        return lines


@dataclass
class Phase:
    name: str
    loop: Loop  # the mandatory outer doall


@dataclass
class Spec:
    name: str
    seed: int
    params: dict = field(default_factory=dict)
    phases: list = field(default_factory=list)
    # filled by finalisation: array name -> concrete extent
    arrays: dict = field(default_factory=dict)


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated test case: source text plus its concrete env."""

    name: str
    seed: int
    source: str
    env: dict
    spec: Spec


# --------------------------------------------------------------------------
# Rendering


def _walk_refs(stmts, ranges, out):
    """Collect every (ref, concrete index ranges) under ``stmts``."""
    for stmt in stmts:
        if isinstance(stmt, Loop):
            inner = dict(ranges)
            inner[stmt.index] = stmt.trip_range
            _walk_refs(stmt.body, inner, out)
        elif isinstance(stmt, Guard):
            for sub in (stmt.cond_left, stmt.cond_right):
                out.append((Ref("", sub), dict(ranges)))
            _walk_refs(stmt.body, ranges, out)
        elif isinstance(stmt, Assign):
            out.append((stmt.lhs, dict(ranges)))
            for r in stmt.rhs:
                out.append((r, dict(ranges)))


def finalize_arrays(spec: Spec) -> None:
    """Size every array to cover its generated subscripts exactly."""
    extents: dict = {}
    for phase in spec.phases:
        refs: list = []
        _walk_refs([phase.loop], {}, refs)
        for ref, ranges in refs:
            if not ref.array:
                continue
            _, hi = ref.subscript.bounds(ranges)
            extents[ref.array] = max(extents.get(ref.array, 1), hi + 1)
    spec.arrays = dict(sorted(extents.items()))


def render(spec: Spec) -> str:
    lines = [f"program {spec.name}"]
    for name in spec.params:  # concrete values travel in the env
        lines.append(f"  param {name}")
    for name, extent in spec.arrays.items():
        lines.append(f"  array {name}({extent})")
    for phase in spec.phases:
        lines.append("")
        lines.append(f"  phase {phase.name}")
        lines.extend(phase.loop.render("    "))
        lines.append("  end phase")
    lines.append("end program")
    return "\n".join(lines) + "\n"


def render_fixture(prog: GeneratedProgram) -> str:
    """Corpus-file form: an ``! env:`` header line plus the source."""
    env = ",".join(f"{k}={v}" for k, v in sorted(prog.env.items()))
    return f"! env: {env}\n! seed: {prog.seed}\n{prog.source}"


# --------------------------------------------------------------------------
# Generation

_ARRAY_POOL = ("A", "B", "C", "D")
_INNER_INDICES = ("j", "k", "t")

#: Trip count of every parallel loop — must cover the largest machine
#: size the driver sweeps (H = 64) so Eq. 7 stays feasible.
PARALLEL_TRIPS = 128


def _parallel_loop(rng: random.Random, spec: Spec) -> Loop:
    if rng.random() < 0.25:
        spec.params["q"] = 7  # 2**7 == PARALLEL_TRIPS
        return Loop(
            index="i",
            lo_text="0",
            hi_text="2 ** q - 1",
            lo_val=0,
            hi_val=PARALLEL_TRIPS - 1,
            parallel=True,
        )
    spec.params["N"] = PARALLEL_TRIPS
    return Loop(
        index="i",
        lo_text="0",
        hi_text="N - 1",
        lo_val=0,
        hi_val=PARALLEL_TRIPS - 1,
        parallel=True,
    )


def _inner_loop(rng: random.Random, spec: Spec, index: str, outer: Loop) -> Loop:
    """One inner serial loop drawn from the corner-case pool."""
    kind = rng.choice(
        ("plain", "plain", "step", "negative", "triangular", "zero_trip")
    )
    extent_name = {"j": "M", "k": "K", "t": "T"}[index]
    extent = rng.choice((3, 4, 6, 8))
    spec.params.setdefault(extent_name, extent)
    extent = spec.params[extent_name]
    if kind == "plain":
        return Loop(index, "0", f"{extent_name} - 1", 0, extent - 1)
    if kind == "step":
        step = rng.choice((2, 3))
        return Loop(index, "0", f"{extent_name} - 1", 0, extent - 1, step=step)
    if kind == "negative":
        return Loop(
            index, f"{extent_name} - 1", "0", extent - 1, 0, step=-1
        )
    if kind == "triangular" and outer.parallel:
        # do j = 0, i — the trisolve shape; concrete range is the
        # parallel loop's full range (widest iteration).
        return Loop(index, "0", outer.index, 0, outer.hi_val)
    if kind == "zero_trip":
        return Loop(
            index,
            extent_name,
            f"{extent_name} - 1",
            extent,
            extent - 1,
        )
    return Loop(index, "0", f"{extent_name} - 1", 0, extent - 1)


def _subscript(
    rng: random.Random, spec: Spec, indices: list, par_hi: tuple
) -> Subscript:
    """An affine, provably in-bounds subscript over ``indices``.

    ``par_hi`` is the parallel loop's ``(hi_text, hi_val)`` — mirror
    subscripts reverse against *that* extent, whatever its spelling
    (``N - 1`` or ``2 ** q - 1``)."""
    style = rng.choice(
        ("unit", "unit", "shifted", "strided", "flatten", "mirror", "window")
    )
    par = indices[0]
    inner = indices[1:]
    if style == "unit":
        var = rng.choice(indices)
        return Subscript((Term("1", 1, var),))
    if style == "shifted":
        var = rng.choice(indices)
        off = rng.choice((1, 2))
        return Subscript((Term("1", 1, var),), str(off), off)
    if style == "strided":
        var = rng.choice(indices)
        c = rng.choice((2, 3))
        return Subscript((Term(str(c), c, var),))
    if style == "flatten" and inner:
        # column-major N*i + j with a *symbolic* stride
        name, val = _extent_param(spec, inner[0])
        return Subscript(
            (Term(name, val, par), Term("1", 1, inner[0]))
        )
    if style == "mirror":
        # N - 1 - i style reversal against the parallel extent
        hi_text, hi_val = par_hi
        return Subscript((Term("-1", -1, par),), hi_text, hi_val)
    if style == "window" and inner:
        # sliding window i + t (FIR / attention gather shape)
        return Subscript((Term("1", 1, par), Term("1", 1, inner[0])))
    return Subscript((Term("1", 1, par),))


def _extent_param(spec: Spec, index: str) -> tuple:
    name = {"j": "M", "k": "K", "t": "T"}.get(index, "M")
    if name not in spec.params:
        spec.params[name] = 4
    return name, spec.params[name]


def _assign(
    rng: random.Random, spec: Spec, indices: list, par_hi: tuple
) -> Assign:
    lhs = Ref(rng.choice(_ARRAY_POOL), _subscript(rng, spec, indices, par_hi))
    rhs = tuple(
        Ref(rng.choice(_ARRAY_POOL), _subscript(rng, spec, indices, par_hi))
        for _ in range(rng.randint(1, 2))
    )
    return Assign(lhs, rhs)


def _guard(
    rng: random.Random, spec: Spec, indices: list, par_hi: tuple
) -> Guard:
    left = Subscript((Term("1", 1, rng.choice(indices)),))
    if len(indices) > 1 and rng.random() < 0.6:
        right = Subscript((Term("1", 1, indices[0]),))
    else:
        name = sorted(spec.params)[0]
        half = spec.params[name] // 2
        right = Subscript((), str(half), half)
    op = rng.choice(("<", "<=", ">=", "=="))
    return Guard(left, op, right, [_assign(rng, spec, indices, par_hi)])


def _body(
    rng: random.Random,
    spec: Spec,
    indices: list,
    depth: int,
    par_hi: tuple,
) -> list:
    """Imperfect nest body: statements may sit beside inner loops."""
    stmts: list = []
    n = rng.randint(1, 2)
    for _ in range(n):
        roll = rng.random()
        if roll < 0.25 and depth < 2:
            inner = _inner_loop(
                rng, spec, _INNER_INDICES[depth], _outer_for(indices)
            )
            inner.body = _body(
                rng, spec, indices + [inner.index], depth + 1, par_hi
            )
            stmts.append(inner)
        elif roll < 0.40:
            stmts.append(_guard(rng, spec, indices, par_hi))
        else:
            stmts.append(_assign(rng, spec, indices, par_hi))
    if not stmts:
        stmts.append(_assign(rng, spec, indices, par_hi))
    return stmts


def _outer_for(indices: list) -> Loop:
    # Only `parallel` and hi_val are consulted by _inner_loop for the
    # triangular case; a light stand-in keeps the recursion simple.
    return Loop(
        index=indices[0],
        lo_text="0",
        hi_text="N - 1",
        lo_val=0,
        hi_val=PARALLEL_TRIPS - 1,
        parallel=len(indices) == 1,
    )


def generate(seed: int) -> GeneratedProgram:
    """Deterministically generate one program from ``seed``."""
    rng = random.Random(seed)
    spec = Spec(name=f"fuzz_{seed:04d}", seed=seed)
    n_phases = rng.randint(1, 3)
    for p in range(n_phases):
        loop = _parallel_loop(rng, spec)
        loop.body = _body(
            rng, spec, [loop.index], 0, (loop.hi_text, loop.hi_val)
        )
        spec.phases.append(Phase(f"F{p}", loop))
    finalize_arrays(spec)
    source = render(spec)
    env = dict(sorted(spec.params.items()))
    return GeneratedProgram(
        name=spec.name, seed=seed, source=source, env=env, spec=spec
    )


def from_spec(spec: Spec) -> GeneratedProgram:
    """Re-render a (possibly shrunk) spec into a runnable test case."""
    finalize_arrays(spec)
    return GeneratedProgram(
        name=spec.name,
        seed=spec.seed,
        source=render(spec),
        env=dict(sorted(spec.params.items())),
        spec=spec,
    )
