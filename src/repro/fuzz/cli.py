"""``python -m repro fuzz`` — the randomized soundness sweep.

Seeds and machine sizes are grid specs (``repro.gridspec`` syntax):
``--seeds 0:199`` sweeps two hundred programs, ``--H 16,64`` checks
each at both machine sizes.  Failing cases are minimised and included
in the report; ``--json`` emits the artifact CI archives nightly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..gridspec import GridSpecError, parse_values
from .driver import DEFAULT_H, run_fuzz

__all__ = ["main_fuzz"]


def main_fuzz(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="randomized differential soundness sweep",
    )
    parser.add_argument(
        "--seeds",
        default="0:19",
        help="seed grid (lo:hi[:step] or comma list; default 0:19)",
    )
    parser.add_argument(
        "--H",
        default=",".join(str(h) for h in DEFAULT_H),
        help="machine-size grid (default 16,64)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip minimising failing cases (faster triage sweeps)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")
    parser.add_argument(
        "--quiet", action="store_true", help="no per-case progress lines"
    )
    args = parser.parse_args(list(argv))

    try:
        seeds = parse_values(args.seeds, spec="--seeds")
        H_values = parse_values(args.H, spec="--H")
    except GridSpecError as exc:
        parser.error(str(exc))

    def progress(outcome):
        if not args.quiet and not args.json:
            print(f"  seed {outcome.seed}: {outcome.status}", flush=True)

    report = run_fuzz(
        seeds,
        H_values,
        shrink_failures=not args.no_shrink,
        progress=progress,
    )

    if args.json:
        from ..document import dumps_canonical

        print(dumps_canonical(report.to_json()))
    else:
        print(report.render())
    if not report.ok:
        print(
            f"FUZZ: {report.counts['mismatch']} mismatch(es), "
            f"{report.counts['error']} error(s)",
            file=sys.stderr,
        )
        return 1
    return 0
