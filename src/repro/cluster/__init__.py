"""``repro.cluster`` — the multi-process scale-out tier of the service.

``python -m repro serve --workers N`` (N ≥ 2, or any ``--queue-dir``)
starts a front-end **router** that consistent-hashes each request's
structural key onto N forked **analysis workers**, each a full
single-process :class:`~repro.service.server.AnalysisServer` owning its
own warm cache shard on disk.  The pieces:

* :mod:`.hashring` — the consistent-hash ring (affinity + minimal
  remapping on membership change);
* :mod:`.worker` — the forked worker entrypoint;
* :mod:`.supervisor` — spawn/heartbeat/respawn/retire + the pure
  autoscale decision;
* :mod:`.jobs` — the durable idempotent ``POST /jobs`` journal;
* :mod:`.router` — the HTTP front end tying them together.

The cluster speaks exactly the single-process protocol
(:mod:`repro.service.protocol`): a response proxied through the router
is byte-identical to the in-process ``analyze()`` serialization, which
is the acceptance property the smoke benchmark asserts.
"""

from .hashring import HashRing, hash_key
from .jobs import Job, JobQueue
from .router import ClusterRouter, cluster_in_thread, main_cluster
from .supervisor import Supervisor, WorkerHandle, desired_workers
from .worker import run_worker

__all__ = [
    "ClusterRouter",
    "HashRing",
    "Job",
    "JobQueue",
    "Supervisor",
    "WorkerHandle",
    "cluster_in_thread",
    "desired_workers",
    "hash_key",
    "main_cluster",
    "run_worker",
]
