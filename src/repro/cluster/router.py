"""The cluster front end: ``python -m repro serve --workers N``.

A :class:`ThreadingHTTPServer` that owns no analysis state of its own.
It materializes each ``/analyze`` request just far enough to compute
the structural :func:`~repro.service.protocol.request_key`, looks the
key up on the consistent-hash ring, and proxies the request to the
owning shard's worker process — so every repeat of a program lands on
the shard whose :class:`~repro.locality.engine.AnalysisCache` is
already warm for it, and the N shards warm N disjoint key arcs instead
of N copies of the same one.

Failure handling, in the order a request meets it:

* **target shard draining** (scale-down in progress) — immediate 503 +
  ``Retry-After``; the blocking client's backoff retries until the
  shard leaves the ring and the key remaps to a survivor;
* **worker death mid-proxy** — the proxy socket fails, the router waits
  one heartbeat for the supervisor's respawn and replays the request
  against the same shard (fresh port, warm snapshot), up to
  ``replay_limit`` times; an admitted request is never dropped, it is
  at-least-once re-executed (deterministic pipeline, so the replayed
  answer is byte-identical);
* **every worker gone** — 503, never a hang.

``POST /jobs`` adds the durable tier (:mod:`repro.cluster.jobs`):
journal first, run through the same dispatch path, journal the result,
replay pending journals at boot.  ``GET /metrics`` aggregates the
shards' counters (:func:`repro.obs.merge_counter_docs`) under
``workers.*`` plus the router's own routing/scaling counters.

The queue-depth autoscaler runs on ``scale_window``: the decision is
:func:`~repro.cluster.supervisor.desired_workers` of the router's
outstanding-request gauge, acted on one spawn or retire per tick.
"""

from __future__ import annotations

import http.client
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .. import __version__
from ..document import dumps_canonical
from ..obs import merge_counter_docs
from ..service.coalesce import ResultLRU
from ..service.config import ServiceConfig
from ..service.protocol import (
    PROTOCOL_VERSION,
    AnalyzeRequest,
    ProtocolError,
    build_request_program,
    request_key,
)
from ..service.server import MAX_BODY_BYTES
from ..service.state import ServerMetrics
from ..session.api import mint_session_id, session_route
from .jobs import DONE, JobQueue
from .supervisor import Supervisor, desired_workers

__all__ = ["ClusterRouter", "cluster_in_thread", "main_cluster"]

#: How long a pending-job resubmission waits for the in-flight run
#: before answering 202 (poll ``GET /jobs/<key>``).
_PENDING_POLL = 0.05


class ClusterRouter(ThreadingHTTPServer):
    """Consistent-hash router over the supervised worker fleet."""

    daemon_threads = False
    block_on_close = True

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.supervisor = Supervisor(config)
        self.jobs: Optional[JobQueue] = (
            JobQueue(config.queue_dir)
            if config.queue_dir is not None
            else None
        )
        self.metrics = ServerMetrics(latency_window=config.latency_window)
        #: Router-level LRU of finished /analyze responses: a repeat of
        #: a completed request answers here without a proxy hop, on top
        #: of whatever result cache the owning shard keeps.
        self.results = ResultLRU(config.result_cache)
        self._gauge_lock = threading.Lock()
        self._outstanding = 0  # proxied requests not yet answered
        self._draining = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_started = False
        self._drain_done = threading.Event()
        self._scale_stop = threading.Event()
        self._scale_thread: Optional[threading.Thread] = None
        self._replay_pool: Optional[ThreadPoolExecutor] = None
        super().__init__((config.host, config.port), _RouterHandler)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn the fleet, replay journaled jobs, start the autoscaler."""
        self.supervisor.start()
        if self.jobs is not None:
            pending = self.jobs.pending()
            if pending:
                self._replay_pool = ThreadPoolExecutor(
                    max_workers=self.config.threads,
                    thread_name_prefix="repro-job-replay",
                )
                for job in pending:
                    self.jobs.stats.bump("replayed")
                    self._replay_pool.submit(self._run_job, job.key,
                                             job.request)
        lo, hi = self.config.scale_bounds()
        if hi > lo:
            self._scale_thread = threading.Thread(
                target=self._scale_loop, name="repro-autoscale", daemon=True
            )
            self._scale_thread.start()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> None:
        """Stop accepting, finish proxied work, drain every worker."""
        with self._drain_lock:
            first = not self._drain_started
            self._drain_started = True
        if not first:
            self._drain_done.wait()
            return
        self._draining.set()
        self._scale_stop.set()
        if self._scale_thread is not None:
            self._scale_thread.join(timeout=5)
        self.shutdown()
        if self._replay_pool is not None:
            self._replay_pool.shutdown(wait=True)
        self.server_close()  # joins in-flight handler threads
        self.supervisor.stop()  # SIGTERM-drains every worker
        self._drain_done.set()

    # -- the proxy path ---------------------------------------------------

    def _note_outstanding(self, delta: int) -> None:
        with self._gauge_lock:
            self._outstanding += delta

    def outstanding(self) -> int:
        with self._gauge_lock:
            return self._outstanding

    def _proxy(self, port: int, method: str, path: str,
               body: Optional[bytes] = None) -> Tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.config.host, port, timeout=self.config.request_timeout + 10
        )
        try:
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = response.read()
            try:
                doc = json.loads(payload) if payload else {}
            except json.JSONDecodeError:
                doc = {"error": payload.decode("utf-8", "replace")}
            return response.status, doc
        finally:
            conn.close()

    def dispatch(
        self,
        key,
        request_doc: Optional[dict],
        method: str = "POST",
        path: str = "/analyze",
    ) -> Tuple[int, dict, dict]:
        """Route one materialized request; ``(status, doc, headers)``.

        ``key`` picks the owning shard on the consistent-hash ring —
        the structural request key for ``/analyze``, the session id for
        ``/session/{id}/*`` (which is what makes sessions shard-sticky:
        every operation on a session lands on the worker holding its
        warm state).  The replay loop is the zero-loss guarantee: a
        proxy that dies under us (worker crash) is retried against the
        shard's next generation after a heartbeat, up to
        ``replay_limit`` times.  (A replayed *session* operation may
        answer 404 — the respawned shard lost its session table; the
        client recreates.  Deterministic failure, never a hang.)
        """
        body = (
            None
            if request_doc is None
            else dumps_canonical(request_doc).encode("utf-8")
        )
        self._note_outstanding(1)
        try:
            replays = 0
            while True:
                shard = self.supervisor.ring.lookup(key)
                if shard is None:
                    return (
                        503,
                        {"error": "no analysis workers available"},
                        {"Retry-After": "1"},
                    )
                handle = self.supervisor.handle(shard)
                if handle is None or handle.draining.is_set():
                    self.metrics.bump("router.draining_rejects")
                    return (
                        503,
                        {"error": f"shard {shard} is draining; retry"},
                        {"Retry-After": "1"},
                    )
                try:
                    status, doc = self._proxy(
                        handle.port, method, path, body
                    )
                except (ConnectionError, OSError,
                        http.client.HTTPException):
                    replays += 1
                    self.metrics.bump("router.replays")
                    if replays > self.config.replay_limit:
                        return (
                            502,
                            {
                                "error": (
                                    f"shard {shard} failed "
                                    f"{replays} times"
                                )
                            },
                            {},
                        )
                    # Give the supervisor one heartbeat to respawn the
                    # shard, then replay against its next generation.
                    time.sleep(self.config.heartbeat_every)
                    continue
                self.metrics.bump("router.routed")
                return status, doc, {}
        finally:
            self._note_outstanding(-1)

    def route_analyze(self, request: AnalyzeRequest) -> Tuple[int, dict, dict]:
        program, env, back = build_request_program(request)
        key = request_key(request, program, env, back)
        cached = self.results.get(key)
        if cached is not None:
            self.metrics.bump("router.lru_hit")
            return 200, cached, {}
        status, doc, headers = self.dispatch(key, request.to_json())
        if status == 200:
            self.results.put(key, doc)
        return status, doc, headers

    # -- the session tier --------------------------------------------------

    def route_session_create(self, body: dict) -> Tuple[int, dict, dict]:
        """``POST /session``: mint the id, pin the shard, proxy.

        The router chooses the session id *before* dispatch so the
        create and every later ``/session/{id}/*`` call hash to the
        same shard — the id is the stickiness key.
        """
        doc = dict(body)
        sid = doc.get("session_id")
        if sid is None:
            sid = mint_session_id()
            doc["session_id"] = sid
        elif not (isinstance(sid, str) and sid):
            return 400, {"error": "'session_id' must be a non-empty string"}, {}
        return self.dispatch(sid, doc, path="/session")

    def route_session(
        self, sid: str, method: str, path: str,
        body: Optional[dict] = None,
    ) -> Tuple[int, dict, dict]:
        """Any ``/session/{id}[/verb]`` operation, sticky by id."""
        return self.dispatch(sid, body, method=method, path=path)

    # -- the durable job tier ---------------------------------------------

    def _run_job(self, key: str, request_doc: dict) -> Optional[dict]:
        """Execute one journaled job through the dispatch path."""
        try:
            request = AnalyzeRequest.from_json(request_doc)
            status, doc, _ = self.route_analyze(request)
        except ProtocolError as exc:
            status, doc = 400, {"error": str(exc)}
        if 200 <= status < 300:
            self.jobs.complete(key, doc)
            return doc
        # A journaled job must not be marked done with a transient
        # failure: leave it pending so the next boot replays it.
        self.metrics.bump("router.job_run_failed")
        return None

    def submit_job(self, key: str, request_doc: dict) -> Tuple[int, dict]:
        """``POST /jobs``: journal, run (or dedup), answer."""
        # Materialize fully before journaling: shape errors, unknown
        # codes and unparsable source all answer 400 here, so a journal
        # entry is by construction runnable — a definitively-bad request
        # must not become a pending job that every boot replays and
        # every replay fails.
        build_request_program(AnalyzeRequest.from_json(request_doc))
        job, created = self.jobs.submit(key, request_doc)
        if created:
            result = self._run_job(key, request_doc)
            if result is None:
                return 503, {
                    "job": key,
                    "state": "pending",
                    "error": "job admitted but not yet completed",
                }
            return 200, {
                "job": key, "state": DONE, "cached": False, "result": result,
            }
        if job.state != DONE:
            # Another thread (or the boot replay) is running it; wait
            # for the journaled result rather than racing a duplicate.
            deadline = time.monotonic() + self.config.request_timeout
            while time.monotonic() < deadline:
                job = self.jobs.get(key)
                if job is not None and job.state == DONE:
                    break
                time.sleep(_PENDING_POLL)
        if job is not None and job.state == DONE:
            return 200, {
                "job": key,
                "state": DONE,
                "cached": True,
                "result": job.result,
            }
        return 202, {"job": key, "state": "pending"}

    def job_document(self, key: str) -> Optional[dict]:
        job = self.jobs.get(key) if self.jobs is not None else None
        if job is None:
            return None
        doc = {"job": job.key, "state": job.state}
        if job.state == DONE:
            doc["result"] = job.result
        return doc

    # -- read-only documents ----------------------------------------------

    def health_document(self) -> dict:
        fleet = self.supervisor.describe()
        workers = fleet["workers"]
        ok = bool(workers) and all(
            w["status"] == "ok" for w in workers
        )
        return {
            "status": (
                "draining"
                if self.draining
                else ("ok" if ok else "degraded")
            ),
            "role": "router",
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "workers": workers,
            "ring": fleet["ring"],
        }

    def metrics_document(self) -> dict:
        doc = self.metrics.snapshot()
        fleet = self.supervisor.describe()
        shard_docs = {}
        counters = []
        for worker in fleet["workers"]:
            if worker["status"] != "ok":
                continue
            try:
                status, shard_doc = self._proxy(
                    worker["port"], "GET", "/metrics"
                )
            except (ConnectionError, OSError, http.client.HTTPException):
                continue
            if status != 200:
                continue
            shard_docs[f"shard-{worker['shard']}"] = {
                "in_flight": shard_doc.get("in_flight"),
                "queue_depth": shard_doc.get("queue_depth"),
                "responses": shard_doc.get("responses"),
                "sessions": shard_doc.get("sessions"),
            }
            counters.append(shard_doc.get("counters") or {})
        doc["workers"] = {
            "counters": merge_counter_docs(counters),
            "shards": shard_docs,
            "respawns": fleet["respawns"],
            "retired": fleet["retired"],
            "count": len(fleet["workers"]),
        }
        doc["outstanding"] = self.outstanding()
        doc["result_cache"] = self.results.stats()
        doc["draining"] = self.draining
        if self.jobs is not None:
            doc["jobs"] = self.jobs.snapshot_stats()
        return doc

    def cache_stats_document(self) -> dict:
        doc: dict = {"shards": {}}
        for worker in self.supervisor.describe()["workers"]:
            if worker["status"] != "ok":
                continue
            try:
                status, shard_doc = self._proxy(
                    worker["port"], "GET", "/cache/stats"
                )
            except (ConnectionError, OSError, http.client.HTTPException):
                continue
            if status == 200:
                doc["shards"][f"shard-{worker['shard']}"] = shard_doc
        return doc

    # -- autoscale --------------------------------------------------------

    def _scale_once(self) -> None:
        lo, hi = self.config.scale_bounds()
        current = self.supervisor.active_count()
        want = desired_workers(
            self.outstanding(), self.config.threads, current, lo, hi
        )
        if want > current:
            try:
                self.supervisor.spawn_one()
                self.metrics.bump("router.scaled_up")
            except RuntimeError as exc:
                print(f"scale-up failed: {exc}", file=sys.stderr)
        elif want < current:
            if self.supervisor.retire_one() is not None:
                self.metrics.bump("router.scaled_down")

    def _scale_loop(self) -> None:
        while not self._scale_stop.wait(self.config.scale_window):
            self._scale_once()


class _RouterHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    timeout = 10
    server: ClusterRouter

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.config.verbose:
            sys.stderr.write(
                "%s - - [%s] %s\n"
                % (self.address_string(), self.log_date_time_string(),
                   format % args)
            )

    def _respond(self, status: int, doc, headers: Optional[dict] = None):
        body = dumps_canonical(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.server.metrics.note_response(status)

    def _error(self, status: int, message: str,
               headers: Optional[dict] = None):
        self._respond(status, {"error": message}, headers)

    def _read_body(self) -> Optional[dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if length <= 0:
            self._error(400, "missing request body")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        try:
            return json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not JSON: {exc}")
            return None

    def do_GET(self):
        if self.path == "/healthz":
            self._respond(200, self.server.health_document())
        elif self.path == "/metrics":
            self._respond(200, self.server.metrics_document())
        elif self.path == "/cache/stats":
            self._respond(200, self.server.cache_stats_document())
        elif self.path.startswith("/jobs/"):
            if self.server.jobs is None:
                self._error(404, "job queue not enabled (--queue-dir)")
                return
            doc = self.server.job_document(self.path[len("/jobs/"):])
            if doc is None:
                self._error(404, "no such job")
            else:
                self._respond(200, doc)
        else:
            route = session_route(self.path)
            if route is not None and route[0] == "entity":
                status, doc, headers = self.server.route_session(
                    route[1], "GET", self.path
                )
                self._respond(status, doc, headers)
                return
            self._error(404, f"no such endpoint {self.path!r}")

    def do_DELETE(self):
        route = session_route(self.path)
        if route is None or route[0] != "entity":
            self._error(404, f"no such endpoint {self.path!r}")
            return
        if self.server.draining:
            self._error(
                503, "router is draining", headers={"Retry-After": "1"}
            )
            return
        status, doc, headers = self.server.route_session(
            route[1], "DELETE", self.path
        )
        self._respond(status, doc, headers)

    def do_POST(self):
        s_route = None
        if self.path not in ("/analyze", "/jobs"):
            s_route = session_route(self.path)
            if s_route is None or s_route[0] == "entity":
                self._error(404, f"no such endpoint {self.path!r}")
                return
        if self.server.draining:
            self._error(
                503, "router is draining", headers={"Retry-After": "1"}
            )
            return
        body = self._read_body()
        if body is None:
            return
        t0 = time.perf_counter()
        try:
            if s_route is not None:
                if not isinstance(body, dict):
                    self._error(400, "request body must be a JSON object")
                    return
                verb, sid = s_route
                if verb == "create":
                    status, doc, headers = (
                        self.server.route_session_create(body)
                    )
                else:
                    status, doc, headers = self.server.route_session(
                        sid, "POST", self.path, body
                    )
                self._respond(status, doc, headers)
            elif self.path == "/analyze":
                try:
                    request = AnalyzeRequest.from_json(body)
                    status, doc, headers = self.server.route_analyze(request)
                except ProtocolError as exc:
                    self._error(400, str(exc))
                    return
                self._respond(status, doc, headers)
            else:
                if self.server.jobs is None:
                    self._error(
                        404,
                        "job queue not enabled; start the router with "
                        "--queue-dir",
                    )
                    return
                if not isinstance(body, dict):
                    self._error(400, "request body must be a JSON object")
                    return
                key = body.get("idempotency_key")
                request_doc = body.get("request")
                if not (isinstance(key, str) and key):
                    self._error(
                        400, "'idempotency_key' must be a non-empty string"
                    )
                    return
                if not isinstance(request_doc, dict):
                    self._error(
                        400, "'request' must be an /analyze request object"
                    )
                    return
                try:
                    status, doc = self.server.submit_job(key, request_doc)
                except ProtocolError as exc:
                    self._error(400, str(exc))
                    return
                self._respond(status, doc)
        except (BrokenPipeError, ConnectionResetError):
            raise
        except Exception as exc:  # defensive: a bug must not kill the thread
            self.server.metrics.bump("router.errors")
            self._error(500, f"internal error: {type(exc).__name__}: {exc}")
        finally:
            self.server.metrics.observe_latency(time.perf_counter() - t0)


def cluster_in_thread(config: ServiceConfig) -> tuple:
    """Start a router (and its fleet) on a background thread.

    Returns ``(router, thread)``; ``config.port = 0`` picks an
    ephemeral port.  Callers own shutdown: ``router.drain()`` then
    ``thread.join()``.
    """
    router = ClusterRouter(config)
    try:
        router.start()
    except BaseException:
        router.supervisor.stop()
        router.server_close()
        raise
    thread = threading.Thread(
        target=router.serve_forever, name="repro-router", daemon=True
    )
    thread.start()
    return router, thread


def main_cluster(config: ServiceConfig) -> int:
    """``python -m repro serve --workers N [--queue-dir DIR]``."""
    try:
        router = ClusterRouter(config)
    except OSError as exc:
        print(
            f"cannot bind {config.host}:{config.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    try:
        router.start()
    except RuntimeError as exc:
        print(f"cluster failed to start: {exc}", file=sys.stderr)
        router.supervisor.stop()
        router.server_close()
        return 1

    host, port = router.server_address[:2]
    lo, hi = config.scale_bounds()
    print(
        f"repro cluster v{__version__} (protocol {PROTOCOL_VERSION}) "
        f"routing on http://{host}:{port} — "
        f"{config.workers} workers (bounds {lo}..{hi}), "
        f"{config.threads} threads each"
        + (f", job queue at {config.queue_dir}" if config.queue_dir else ""),
        file=sys.stderr,
    )

    def on_signal(signum, frame):
        print(
            f"signal {signal.Signals(signum).name}: draining cluster...",
            file=sys.stderr,
        )
        threading.Thread(
            target=router.drain, name="repro-drain", daemon=True
        ).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, on_signal)
    try:
        router.serve_forever()
    finally:
        router.drain()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("cluster drained; shard snapshots saved", file=sys.stderr)
    return 0
