"""Durable idempotent job queue: ``POST /jobs`` journaling + boot replay.

Batch clients that cannot afford to lose work submit through ``/jobs``
with an **idempotency key**.  The router journals the request to one
canonical-JSON file per job under ``--queue-dir`` *before* running it
(:func:`repro.persist.atomic_write_bytes`: temp + fsync + rename, so a
crash mid-write leaves either no journal or a complete one), marks the
job ``done`` with its full result document afterwards, and replays
every still-``pending`` journal at boot.  The contract:

* an acknowledged job survives a router crash — it is re-run at boot;
* resubmitting an idempotency key whose job finished returns the
  journaled result document, byte-identical to the first response
  (``done`` journals store the document itself, not a pointer into a
  cache that might have evicted it);
* a corrupt or truncated journal file degrades exactly like the cache
  pickles: skipped with a :class:`repro.errors.CacheLoadWarning` and a
  ``corrupt`` stat bump — it never takes down the boot or the other
  journals (see DESIGN.md's failure matrix).

File names derive from the SHA-256 of the idempotency key, so any
printable key is safe and equal keys collide on purpose.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..document import dumps_canonical
from ..errors import CacheLoadWarning
from ..persist import atomic_write_bytes

__all__ = ["Job", "JobQueue"]

JOB_SCHEMA = 1

PENDING = "pending"
DONE = "done"


@dataclass
class Job:
    """One journaled batch request."""

    key: str  # the client's idempotency key
    request: dict  # the /analyze request document
    state: str = PENDING
    result: Optional[dict] = None  # the full response document when done
    attempts: int = 0  # run attempts this process (not journaled)

    def to_json(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "key": self.key,
            "request": self.request,
            "state": self.state,
            "result": self.result,
        }

    @classmethod
    def from_json(cls, doc) -> "Job":
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != JOB_SCHEMA
            or not isinstance(doc.get("key"), str)
            or not isinstance(doc.get("request"), dict)
            or doc.get("state") not in (PENDING, DONE)
            or (doc["state"] == DONE and not isinstance(doc.get("result"), dict))
        ):
            raise ValueError("not a job journal document")
        return cls(
            key=doc["key"],
            request=doc["request"],
            state=doc["state"],
            result=doc.get("result"),
        )


@dataclass
class _Stats:
    submitted: int = 0
    deduped: int = 0
    completed: int = 0
    replayed: int = 0
    corrupt: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, name: str, n: int = 1) -> None:
        with self.lock:
            setattr(self, name, getattr(self, name) + n)

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "submitted": self.submitted,
                "deduped": self.deduped,
                "completed": self.completed,
                "replayed": self.replayed,
                "corrupt": self.corrupt,
            }


class JobQueue:
    """The on-disk journal plus its in-memory index, under one lock."""

    def __init__(self, directory):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self.stats = _Stats()
        self._load()

    def _path(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return os.path.join(self.directory, f"job-{digest}.json")

    def _journal(self, job: Job) -> None:
        payload = dumps_canonical(job.to_json()).encode("utf-8")
        atomic_write_bytes(self._path(job.key), payload)

    def _load(self) -> None:
        """Index every journal on disk; corrupt files are skipped loudly."""
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return
        for name in names:
            if not (name.startswith("job-") and name.endswith(".json")):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as fh:
                    job = Job.from_json(json.loads(fh.read()))
            except (OSError, ValueError) as exc:
                self.stats.bump("corrupt")
                warnings.warn(
                    f"job journal {path!r} could not be loaded "
                    f"({type(exc).__name__}: {exc}); skipping it",
                    CacheLoadWarning,
                    stacklevel=2,
                )
                continue
            self._jobs[job.key] = job

    # -- the lifecycle ----------------------------------------------------

    def submit(self, key: str, request: dict) -> tuple:
        """Journal a job as pending; ``(job, created)``.

        ``created`` is False when the idempotency key is already known —
        the caller then serves the journaled result (done) or lets the
        in-flight run finish (pending) instead of running it again.
        The journal hits disk *before* this returns, so an acknowledged
        submission is durable.
        """
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None:
                self.stats.bump("deduped")
                return existing, False
            job = Job(key=key, request=dict(request))
            self._jobs[key] = job
            self._journal(job)
            self.stats.bump("submitted")
            return job, True

    def complete(self, key: str, result: dict) -> Job:
        """Mark a job done, journaling its full result document."""
        with self._lock:
            job = self._jobs[key]
            job.state = DONE
            job.result = result
            self._journal(job)
            self.stats.bump("completed")
            return job

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def pending(self) -> List[Job]:
        """Jobs to (re)run, in deterministic key order — the boot replay."""
        with self._lock:
            return sorted(
                (j for j in self._jobs.values() if j.state == PENDING),
                key=lambda j: j.key,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def snapshot_stats(self) -> dict:
        doc = self.stats.snapshot()
        with self._lock:
            states = {PENDING: 0, DONE: 0}
            for job in self._jobs.values():
                states[job.state] += 1
        doc["jobs"] = states
        doc["directory"] = self.directory
        return doc
