"""One analysis worker process: a full single-process server, sharded.

The supervisor forks this entrypoint once per shard.  Each worker is a
complete :class:`~repro.service.server.AnalysisServer` — admission,
single-flight, result LRU, its own warm
:class:`~repro.locality.engine.AnalysisCache` and plan bundle with
shard-private snapshot paths (``ServiceConfig.for_shard``) — bound to
an ephemeral port that is reported back to the supervisor over a pipe.
The configuration crosses the fork as a ``ServiceConfig`` spec string,
so spawning a worker is ``run_worker(spec, conn)`` and nothing else.

SIGTERM is the retire path: graceful drain (finish every admitted
request, write the final snapshots) then exit 0.  Any other death is a
crash the supervisor notices by waitpid/heartbeat and respawns with
``generation + 1`` onto the *same* shard directory — the respawned
worker warm-starts from the dead one's last snapshot.

The ``worker_crash`` fault seam (:mod:`repro.check.faults`) is wired
through the server's ``job_hook``: a generation-0 worker that inherited
an armed seam hard-exits (``os._exit``) on its first admitted job —
mid-request, after admission, the worst case for the router.  Only
generation 0 installs the hook, so the respawned generation serves the
replay instead of crash-looping; the end-to-end test asserts the
request still answers, byte-identical.
"""

from __future__ import annotations

import os
import signal
import sys
import threading

from ..check import faults
from ..service.config import ServiceConfig
from ..service.server import AnalysisServer

__all__ = ["run_worker"]


def _install_crash_seam(server: AnalysisServer, config: ServiceConfig):
    """Arm the inherited ``worker_crash`` seam on a generation-0 worker."""
    if config.generation != 0 or not faults.is_armed("worker_crash"):
        return

    def crash_hook(request, key):
        if faults.fire("worker_crash"):
            # SIGKILL semantics: no drain, no snapshot, no goodbye.
            os._exit(17)

    server.job_hook = crash_hook


def run_worker(spec: str, conn) -> None:
    """Process entrypoint: serve one shard until told to drain.

    ``spec`` is ``ServiceConfig.to_spec()`` of this shard's config
    (``port=0``); ``conn`` a pipe that receives the bound port (or an
    ``("error", message)`` tuple if the server cannot start).
    """
    config = ServiceConfig.from_spec(spec)
    try:
        server = AnalysisServer(config)
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        os._exit(1)

    _install_crash_seam(server, config)

    def on_term(signum, frame):
        threading.Thread(
            target=server.drain, name="repro-worker-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, on_term)
    # The router owns Ctrl-C: a worker ignores the process group's
    # SIGINT and waits for its supervisor's explicit SIGTERM.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    port = server.server_address[1]
    try:
        conn.send(("ok", port))
    finally:
        conn.close()
    if config.verbose:
        print(
            f"shard {config.shard} gen {config.generation} "
            f"(pid {os.getpid()}) on port {port}",
            file=sys.stderr,
        )
    try:
        server.serve_forever()
    finally:
        server.drain()
    os._exit(0)
