"""Worker supervision: spawn, heartbeat, respawn, retire, autoscale math.

The supervisor owns the worker processes and the ring membership; the
router only reads them.  Liveness is checked on a ``heartbeat_every``
cadence two ways — ``waitpid`` (a dead process is definitive) and an
HTTP ``GET /healthz`` probe (a wedged process answers nothing) — and a
worker that fails either is respawned onto the **same shard** with
``generation + 1``: same snapshot directory, so the replacement
warm-starts from the last snapshot the dead worker wrote, and the ring
is untouched, so no other shard's keys move.  Requests that were
in flight on the dead worker fail at the router's proxy socket and are
replayed against the respawn (:mod:`repro.cluster.router`); nothing is
lost, some work is redone — the standard at-least-once trade.

Retiring (the scale-down path) is the opposite contract: the shard
first *drains* — the router answers its keys with 503 + ``Retry-After``
while SIGTERM lets in-flight work finish and snapshot — and only then
leaves the ring, remapping its arc to the survivors.

:func:`desired_workers` is the autoscale decision as a pure function of
the router's outstanding-request gauge, so the policy is unit-testable
without processes.
"""

from __future__ import annotations

import http.client
import multiprocessing
import os
import signal
import sys
import threading
import time
from typing import Dict, Optional

from ..service.config import ServiceConfig
from .hashring import HashRing
from .worker import run_worker

__all__ = ["WorkerHandle", "Supervisor", "desired_workers"]

#: Consecutive failed /healthz probes before a live process is declared
#: wedged and respawned.
HEALTHZ_FAILURES = 3

#: Seconds to wait for a freshly forked worker to report its port.
SPAWN_TIMEOUT = 30.0


def desired_workers(
    outstanding: int, threads: int, current: int, lo: int, hi: int
) -> int:
    """How many workers the backlog wants, clamped to ``[lo, hi]``.

    ``outstanding`` is the router's gauge of proxied requests not yet
    answered; one worker absorbs ``threads`` of them concurrently, so
    the target is ``ceil(outstanding / threads)`` — scaled *gradually*
    by the caller (one spawn/retire per tick) to avoid flapping on a
    bursty gauge.
    """
    want = max(1, -(-max(0, outstanding) // max(1, threads)))
    return max(lo, min(hi, want))


class WorkerHandle:
    """One live (or draining) worker process, as the router sees it."""

    def __init__(self, shard: int, generation: int, process, port: int):
        self.shard = shard
        self.generation = generation
        self.process = process
        self.port = port
        self.draining = threading.Event()
        self.healthz_failures = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def describe(self) -> dict:
        return {
            "shard": self.shard,
            "generation": self.generation,
            "pid": self.pid,
            "port": self.port,
            "status": (
                "draining"
                if self.draining.is_set()
                else ("ok" if self.alive() else "dead")
            ),
        }


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # non-POSIX: lose fault-seam inheritance only
        return multiprocessing.get_context("spawn")


class Supervisor:
    """Spawns and watches the shard processes; owns the hash ring."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.ring = HashRing()
        self._ctx = _fork_context()
        self._lock = threading.Lock()
        self._handles: Dict[int, WorkerHandle] = {}
        self._next_shard = 0
        self.respawns = 0
        self.retired = 0
        self._stop = threading.Event()
        self._beat_thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn the initial fleet and start the heartbeat loop."""
        for _ in range(self.config.workers):
            self.spawn_one()
        self._beat_thread = threading.Thread(
            target=self._beat_loop, name="repro-heartbeat", daemon=True
        )
        self._beat_thread.start()

    def stop(self) -> None:
        """Drain every worker (SIGTERM, join) and stop the heartbeat."""
        self._stop.set()
        if self._beat_thread is not None:
            self._beat_thread.join(timeout=5)
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.draining.set()
            self._terminate(handle)
        for handle in handles:
            handle.process.join(timeout=10)
            if handle.alive():
                handle.process.kill()
                handle.process.join(timeout=5)
            self.ring.remove(handle.shard)

    def _terminate(self, handle: WorkerHandle) -> None:
        try:
            if handle.pid:
                os.kill(handle.pid, signal.SIGTERM)
        except (ProcessLookupError, OSError):
            pass

    # -- spawning ---------------------------------------------------------

    def _spawn(self, shard: int, generation: int) -> WorkerHandle:
        worker_config = self.config.for_shard(shard, generation)
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=run_worker,
            args=(worker_config.to_spec(), child),
            name=f"repro-shard-{shard}",
        )
        process.start()
        child.close()
        if not parent.poll(SPAWN_TIMEOUT):
            process.kill()
            raise RuntimeError(
                f"shard {shard} gen {generation} did not report a port "
                f"within {SPAWN_TIMEOUT}s"
            )
        status, value = parent.recv()
        parent.close()
        if status != "ok":
            process.join(timeout=5)
            raise RuntimeError(
                f"shard {shard} gen {generation} failed to start: {value}"
            )
        return WorkerHandle(shard, generation, process, int(value))

    def spawn_one(self) -> int:
        """Bring up a brand-new shard; returns its id."""
        with self._lock:
            shard = self._next_shard
            self._next_shard += 1
        handle = self._spawn(shard, generation=0)
        with self._lock:
            self._handles[shard] = handle
        self.ring.add(shard)
        return shard

    def _respawn(self, dead: WorkerHandle) -> None:
        generation = dead.generation + 1
        try:
            handle = self._spawn(dead.shard, generation)
        except RuntimeError as exc:
            # Leave the dead handle in place; the next beat retries
            # (generation keeps advancing, so the attempt is visible).
            dead.generation = generation
            print(f"respawn failed: {exc}", file=sys.stderr)
            return
        with self._lock:
            self._handles[dead.shard] = handle
            self.respawns += 1
        if self.config.verbose:
            print(
                f"respawned shard {dead.shard} as gen {generation} "
                f"(port {handle.port})",
                file=sys.stderr,
            )

    # -- retiring ---------------------------------------------------------

    def retire_one(self) -> Optional[int]:
        """Drain and remove the youngest shard (scale-down step).

        Marks it draining immediately — the router starts answering its
        keys with 503 — and finishes the SIGTERM/join/ring-removal on a
        background thread so the autoscaler tick never blocks on a
        drain.  Returns the shard id, or None if only one worker left.
        """
        with self._lock:
            active = [
                h for h in self._handles.values()
                if not h.draining.is_set()
            ]
            if len(active) <= 1:
                return None
            handle = max(active, key=lambda h: h.shard)
            handle.draining.set()
        threading.Thread(
            target=self._finish_retire,
            args=(handle,),
            name=f"repro-retire-{handle.shard}",
            daemon=True,
        ).start()
        return handle.shard

    def _finish_retire(self, handle: WorkerHandle) -> None:
        self._terminate(handle)
        handle.process.join(timeout=60)
        if handle.alive():
            handle.process.kill()
            handle.process.join(timeout=5)
        self.ring.remove(handle.shard)
        with self._lock:
            if self._handles.get(handle.shard) is handle:
                del self._handles[handle.shard]
            self.retired += 1

    # -- heartbeats -------------------------------------------------------

    def _probe_healthz(self, handle: WorkerHandle) -> bool:
        conn = http.client.HTTPConnection(
            self.config.host,
            handle.port,
            timeout=max(self.config.heartbeat_every, 0.25),
        )
        try:
            conn.request("GET", "/healthz")
            return conn.getresponse().status == 200
        except (ConnectionError, OSError):
            return False
        finally:
            conn.close()

    def _beat_once(self) -> None:
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            if self._stop.is_set() or handle.draining.is_set():
                continue
            if not handle.alive():
                self._respawn(handle)
                continue
            if self._probe_healthz(handle):
                handle.healthz_failures = 0
            else:
                handle.healthz_failures += 1
                if handle.healthz_failures >= HEALTHZ_FAILURES:
                    # Alive but unresponsive: put it down, bring up the
                    # next generation (same shard, same snapshots).
                    handle.process.kill()
                    handle.process.join(timeout=5)
                    self._respawn(handle)

    def _beat_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_every):
            self._beat_once()

    # -- read-only views --------------------------------------------------

    def handle(self, shard: int) -> Optional[WorkerHandle]:
        with self._lock:
            return self._handles.get(shard)

    def handles(self) -> list:
        with self._lock:
            return sorted(self._handles.values(), key=lambda h: h.shard)

    def active_count(self) -> int:
        with self._lock:
            return sum(
                1 for h in self._handles.values()
                if not h.draining.is_set()
            )

    def describe(self) -> dict:
        with self._lock:
            handles = sorted(self._handles.values(), key=lambda h: h.shard)
            respawns, retired = self.respawns, self.retired
        return {
            "workers": [h.describe() for h in handles],
            "respawns": respawns,
            "retired": retired,
            "ring": list(self.ring.shards()),
        }
