"""Consistent hash ring: request keys -> analysis shards.

The router places every shard at ``replicas`` pseudo-random points on a
2^64 ring (SHA-256 of ``"shard:{id}:{replica}"``) and routes a request
to the first shard point at or clockwise-after the hash of its
:func:`~repro.service.protocol.request_key`.  Two properties matter:

* **Affinity** — the same structural program fingerprint always lands
  on the same shard, so each shard's warm
  :class:`~repro.locality.engine.AnalysisCache`/plan bundle sees every
  repeat of "its" programs.  A round-robin router would spread repeats
  across all shards and cold-miss ``N - 1`` times per program.
* **Minimal disruption** — adding or retiring one shard remaps only the
  keys in the arcs that shard's points own (~``1/N`` of the space);
  every other key keeps its warm shard.  That is what makes the
  queue-depth autoscaler cheap to act on.

The ring is read-mostly (every request does a lookup; membership only
changes on spawn/retire), so lookups take a snapshot under the lock and
bisect outside it.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import List, Optional, Tuple

__all__ = ["HashRing", "hash_key"]

_SPACE = 1 << 64


def hash_key(key) -> int:
    """A stable 64-bit point for any printable-repr key.

    Request keys are tuples of strings/ints/tuples (see
    ``protocol.request_key``), whose ``repr`` is deterministic across
    processes and runs — unlike ``hash()``, which is salted per process
    for strings and would break router-restart affinity.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Thread-safe consistent-hash ring over integer shard ids."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._lock = threading.Lock()
        self._points: List[int] = []  # sorted ring positions
        self._owners: dict = {}  # position -> shard id
        self._shards: set = set()

    def _positions(self, shard: int):
        for replica in range(self.replicas):
            yield hash_key(f"shard:{shard}:{replica}")

    def add(self, shard: int) -> None:
        with self._lock:
            if shard in self._shards:
                return
            self._shards.add(shard)
            for pos in self._positions(shard):
                # A (vanishingly rare) collision keeps the earlier
                # owner; the shard still owns its other replica points.
                if pos in self._owners:
                    continue
                self._owners[pos] = shard
                bisect.insort(self._points, pos)

    def remove(self, shard: int) -> None:
        with self._lock:
            if shard not in self._shards:
                return
            self._shards.discard(shard)
            for pos in self._positions(shard):
                if self._owners.get(pos) == shard:
                    del self._owners[pos]
                    index = bisect.bisect_left(self._points, pos)
                    del self._points[index]

    def shards(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._shards))

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def __contains__(self, shard: int) -> bool:
        with self._lock:
            return shard in self._shards

    def lookup(self, key) -> Optional[int]:
        """The shard owning ``key``; None on an empty ring."""
        chain = self.lookup_chain(key, 1)
        return chain[0] if chain else None

    def lookup_chain(self, key, n: int) -> List[int]:
        """Up to ``n`` distinct shards in ring order from ``key``.

        The first entry is the owner; the rest are the fallback order a
        router replays through when the owner is draining or dead and
        membership has not caught up yet.
        """
        with self._lock:
            points = list(self._points)
            owners = dict(self._owners)
        if not points:
            return []
        chain: List[int] = []
        start = bisect.bisect(points, hash_key(key) % _SPACE)
        for offset in range(len(points)):
            shard = owners[points[(start + offset) % len(points)]]
            if shard not in chain:
                chain.append(shard)
                if len(chain) >= n:
                    break
        return chain
