"""``AnalysisOptions`` — the one front door for every engine knob.

PRs 1–2 grew four process-global toggles (``locality.set_engine``,
``locality.set_analysis_cache``, ``symbolic.set_refutation``,
``dsm.set_fast_path``).  Module state composes badly — libraries
embedding the analysis cannot scope a setting to one call — so the
knobs now travel explicitly: build a frozen :class:`AnalysisOptions`
and pass it to :func:`repro.analyze`.  This is the *only* configuration
surface — the deprecated ``set_*`` shims were removed in PR 8.  An
option left at ``None`` inherits the process default, which tests and
the perf harness move via the private ``_set_*_default`` helpers.

The CLI accepts the same knobs one-to-one via ``--opt KEY=VALUE,...``
(:meth:`AnalysisOptions.from_spec` parses the spec, so the CLI grammar
*is* the Python API).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Optional, Union

__all__ = ["AnalysisOptions", "format_chunk_bounds", "parse_chunk_bounds"]

_ENGINES = (None, "serial", "parallel")
_FAST_PATHS = (None, "symbolic", "wide", "legacy", "off")

_TRUE = ("on", "true", "yes", "1")
_FALSE = ("off", "false", "no", "0")


def _split_unescaped(text: str, sep: str) -> list:
    """Split on ``sep`` except where it is backslash-escaped."""
    parts: list = []
    current: list = []
    it = iter(text)
    for ch in it:
        if ch == "\\":
            nxt = next(it, None)
            if nxt is None:
                current.append(ch)
            else:
                current.append(ch + nxt)
            continue
        if ch == sep:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _partition_unescaped(text: str, sep: str):
    """Like ``str.partition`` but skipping backslash-escaped separators."""
    escaped = False
    for i, ch in enumerate(text):
        if escaped:
            escaped = False
            continue
        if ch == "\\":
            escaped = True
            continue
        if ch == sep:
            return text[:i], True, text[i + 1 :]
    return text, False, ""


def _unescape(text: str) -> str:
    out: list = []
    it = iter(text)
    for ch in it:
        if ch == "\\":
            nxt = next(it, None)
            out.append(ch if nxt is None else nxt)
        else:
            out.append(ch)
    return "".join(out)


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")
    )


def parse_chunk_bounds(spec: str) -> dict:
    """Parse ``"F1:1:8;F3:4:4"`` into ``{phase: (lo, hi)}``.

    Each clause bounds one phase's CYCLIC(p) chunk to ``lo <= p <= hi``
    (``lo == hi`` pins it).  A single number is shorthand for a pin.
    """
    bounds: dict = {}
    for clause in (spec or "").split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = [p.strip() for p in clause.split(":")]
        if len(parts) == 2:
            parts.append(parts[1])
        if len(parts) != 3 or not parts[0]:
            raise ValueError(
                f"bad chunk bound {clause!r}: expected PHASE:lo:hi"
            )
        phase = parts[0]
        try:
            lo, hi = int(parts[1]), int(parts[2])
        except ValueError:
            raise ValueError(
                f"bad chunk bound {clause!r}: lo/hi must be integers"
            ) from None
        if lo < 1 or hi < lo:
            raise ValueError(
                f"bad chunk bound {clause!r}: need 1 <= lo <= hi"
            )
        bounds[phase] = (lo, hi)
    return bounds


def format_chunk_bounds(bounds) -> str:
    """The canonical (sorted) spec string for a ``{phase: (lo, hi)}`` map."""
    return ";".join(
        f"{phase}:{lo}:{hi}"
        for phase, (lo, hi) in sorted(bounds.items())
    )


def _parse_bool(key: str, value: str) -> bool:
    low = value.strip().lower()
    if low in _TRUE:
        return True
    if low in _FALSE:
        return False
    raise ValueError(
        f"bad value {value!r} for option {key!r}: expected on/off"
    )


@dataclass(frozen=True)
class AnalysisOptions:
    """Every accelerator/observability knob of the pipeline, in one place.

    ``None`` means "inherit the process default" (which the deprecated
    ``set_*`` shims still move); any other value wins over the default
    for the one ``analyze`` call it is passed to.

    Parameters
    ----------
    engine:
        LCG edge dispatch: ``"serial"`` or ``"parallel"`` (process-pool
        fan-out with deterministic merge).
    analysis_cache:
        the fingerprint-keyed memo of edge and Theorem-1 results.
        ``True``/``False`` force the process-global cache on/off, a path
        string warm-starts from (and saves back to) a pickled cache
        file, and an :class:`~repro.locality.engine.AnalysisCache`
        instance is used directly.
    refutation:
        sampled disproof of ``is_nonneg`` queries (bool).
    dsm_fast_path:
        executor accounting tier: ``"symbolic"`` (closed-form
        descriptor arithmetic, O(descriptors) instead of O(addresses)),
        ``"wide"`` (descriptor-first ragged enumeration), ``"legacy"``
        (affine-rectangular only) or ``"off"`` (always interpret).
        Each tier falls back to the next on anything outside its
        fragment, so counts are identical across tiers.
    parallel_workers:
        cap on the parallel engine's pool width (default: engine cap).
    machine_alpha / machine_beta:
        Eq. 7 machine-cost overrides: per-message latency and
        per-element bandwidth in units of one local access.  ``None``
        keeps the T3D defaults (:data:`repro.distribution.costs.T3D`).
        These steer the distribution solver only — labels and
        descriptors are machine-independent.
    chunk_bounds:
        distribution-space restriction, ``"PHASE:lo:hi;..."``: clamp a
        phase's CYCLIC(p) chunk to ``lo <= p <= hi`` (``lo == hi`` pins
        it).  The solver optimises within the clamped boxes; an empty
        box triggers the usual relaxation path.
    plan:
        compiled analysis plans (:mod:`repro.plan`): record a plan on
        the first build of a (program, binding) and replay it on later
        builds — pre-computed edge fingerprints, batched nonneg
        verdicts, pre-built kernels.  Defaults on when ``plan_cache``
        is set; plain ``plan=True`` uses the in-memory process bundle.
    plan_cache:
        persistence for the plan bundle: a path string loads the
        on-disk plan/compile/refutation snapshot before the build and
        saves it back after (atomic write), a
        :class:`repro.plan.PlanCache` instance is used directly.
    trace:
        record spans on a :class:`repro.obs.Collector`; surfaced as
        ``result.trace``.
    metrics:
        record counters/gauges; surfaced as ``result.metrics``.
    """

    engine: Optional[str] = None
    analysis_cache: Union[None, bool, str, object] = None
    refutation: Optional[bool] = None
    dsm_fast_path: Optional[str] = None
    parallel_workers: Optional[int] = None
    machine_alpha: Optional[float] = None
    machine_beta: Optional[float] = None
    chunk_bounds: Optional[str] = None
    plan: Optional[bool] = None
    plan_cache: Union[None, str, object] = None
    trace: bool = False
    metrics: bool = False

    def __post_init__(self):
        if self.engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}: expected 'serial' or "
                f"'parallel'"
            )
        if self.dsm_fast_path not in _FAST_PATHS:
            raise ValueError(
                f"unknown dsm_fast_path {self.dsm_fast_path!r}: expected "
                f"'symbolic', 'wide', 'legacy' or 'off'"
            )
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1, got {self.parallel_workers}"
            )
        for name in ("machine_alpha", "machine_beta"):
            value = getattr(self, name)
            if value is not None and not float(value) >= 0.0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        if self.chunk_bounds is not None:
            # Validate and canonicalise (sorted clauses) so equal bound
            # sets compare/serialize identically, e.g. in request keys.
            canonical = format_chunk_bounds(
                parse_chunk_bounds(self.chunk_bounds)
            )
            object.__setattr__(self, "chunk_bounds", canonical)
        cache = self.analysis_cache
        if not (
            cache is None
            or isinstance(cache, (bool, str, os.PathLike))
            or (hasattr(cache, "edges") and hasattr(cache, "intra"))
        ):
            raise ValueError(
                f"analysis_cache must be a bool, a path or an "
                f"AnalysisCache, got {cache!r}"
            )
        plan_cache = self.plan_cache
        if not (
            plan_cache is None
            or isinstance(plan_cache, (str, os.PathLike))
            or (hasattr(plan_cache, "plans") and hasattr(plan_cache, "banks"))
        ):
            raise ValueError(
                f"plan_cache must be a path or a PlanCache, "
                f"got {plan_cache!r}"
            )

    # -- CLI spec grammar (one-to-one with the Python fields) --------------

    @classmethod
    def from_spec(cls, spec: str, **overrides) -> "AnalysisOptions":
        """Parse ``"engine=parallel,cache=/tmp/lcg.pkl,..."``.

        Keys: ``engine``, ``cache`` (on/off or a file path),
        ``refutation`` (on/off), ``fast_path``
        (symbolic/wide/legacy/off), ``workers`` (int), ``plan``
        (on/off), ``plan_cache`` (a file path), ``trace`` (on/off),
        ``metrics`` (on/off).
        The long Python field names are accepted as aliases.  Literal
        ``,``/``=``/``\\`` inside a value (cache file paths, typically)
        are backslash-escaped, as :meth:`to_spec` emits them.
        """
        kwargs = cls._spec_kwargs(spec)
        kwargs.update(overrides)
        return cls(**kwargs)

    @classmethod
    def from_specs(cls, specs, **overrides) -> "AnalysisOptions":
        """Parse a sequence of spec strings (the CLI's repeated ``--opt``).

        Each spec is parsed independently — so one ``--opt
        cache=/warm,start.pkl`` stays one assignment even with escapes
        aside — and later specs win per key.
        """
        kwargs: dict = {}
        for spec in specs:
            kwargs.update(cls._spec_kwargs(spec))
        kwargs.update(overrides)
        return cls(**kwargs)

    @classmethod
    def _spec_kwargs(cls, spec: str) -> dict:
        kwargs: dict = {}
        for item in _split_unescaped(spec or "", ","):
            if not _unescape(item).strip():
                continue
            key, sep, value = _partition_unescaped(item, "=")
            if not sep:
                raise ValueError(
                    f"bad option {_unescape(item).strip()!r}: "
                    f"expected KEY=VALUE"
                )
            key = _unescape(key).strip().replace("-", "_")
            value = _unescape(value.strip())
            if key == "engine":
                kwargs["engine"] = value
            elif key in ("cache", "analysis_cache"):
                low = value.lower()
                if low in _TRUE:
                    kwargs["analysis_cache"] = True
                elif low in _FALSE:
                    kwargs["analysis_cache"] = False
                else:
                    kwargs["analysis_cache"] = value  # a cache file path
            elif key == "refutation":
                kwargs["refutation"] = _parse_bool(key, value)
            elif key in ("fast_path", "dsm_fast_path"):
                kwargs["dsm_fast_path"] = value
            elif key in ("workers", "parallel_workers"):
                kwargs["parallel_workers"] = int(value)
            elif key in ("alpha", "machine_alpha"):
                kwargs["machine_alpha"] = float(value)
            elif key in ("beta", "machine_beta"):
                kwargs["machine_beta"] = float(value)
            elif key in ("chunks", "chunk_bounds"):
                kwargs["chunk_bounds"] = value
            elif key == "plan":
                kwargs["plan"] = _parse_bool(key, value)
            elif key == "plan_cache":
                kwargs["plan_cache"] = value  # a plan-bundle file path
            elif key == "trace":
                kwargs["trace"] = _parse_bool(key, value)
            elif key == "metrics":
                kwargs["metrics"] = _parse_bool(key, value)
            else:
                raise ValueError(
                    f"unknown option {key!r}; known keys: engine, cache, "
                    f"refutation, fast_path, workers, alpha, beta, chunks, "
                    f"plan, plan_cache, trace, metrics"
                )
        return kwargs

    def to_spec(self) -> str:
        """The inverse of :meth:`from_spec` (explicitly-set keys only)."""
        short = {
            "engine": "engine",
            "analysis_cache": "cache",
            "refutation": "refutation",
            "dsm_fast_path": "fast_path",
            "parallel_workers": "workers",
            "machine_alpha": "alpha",
            "machine_beta": "beta",
            "chunk_bounds": "chunks",
            "plan": "plan",
            "plan_cache": "plan_cache",
            "trace": "trace",
            "metrics": "metrics",
        }
        parts: list = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value == f.default:
                continue
            if isinstance(value, bool):
                value = "on" if value else "off"
            elif isinstance(value, str):
                value = _escape(value)
            elif isinstance(value, os.PathLike):
                value = _escape(os.fspath(value))
            parts.append(f"{short[f.name]}={value}")
        return ",".join(parts)

    def merged_defaults(self, **defaults) -> "AnalysisOptions":
        """A copy where ``None`` fields take the given default values."""
        updates = {
            name: value
            for name, value in defaults.items()
            if getattr(self, name) is None
        }
        return replace(self, **updates) if updates else self
