"""Array Reference Descriptors (ARDs) — §2 of the paper.

The ARD of the s-th reference to array ``X`` in phase ``F_k`` is
``A_s^k(X, i_k) = (alpha, delta, lambda, tau)`` with one element per loop
of the nest:

* ``delta[j]``  — |stride|: the absolute difference of the subscript
  expression φ at two consecutive values of the j-th loop index,
* ``lambda[j]`` — the stride's sign,
* ``alpha[j]``  — the *trip count* along that dimension: the difference
  of φ at the loop limits divided by the (signed) stride, **plus one**.
  (The paper's prose omits the "+1" but its Figure 2 values — ``Q``,
  ``(P-2)*2**-L + 1``, ``P*2**-L``, ``2**(L-1)`` — and the concrete IDs
  of Figures 4 and 8 all require the trip-count convention, which we
  therefore adopt; ``span = (alpha - 1) * delta``.)
* ``tau``       — the offset of the accessed region's *lowest* address
  from the array base (for a descending dimension the loop upper limit
  realises the minimum, so τ is evaluated at the minimising corner).

Strides are computed by **symbolic differencing**, which is what lets the
whole machinery work for non-affine subscripts such as TFFT2's
``2*P*I + 2**(L-1)*J + K`` and for non-constant loop bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..ir.core import AccessKind, ArrayDecl, PhaseAccess
from ..symbolic import (
    Context,
    Expr,
    Symbol,
    ZERO,
    as_expr,
    divide_exact,
    shift_difference,
)

__all__ = ["Dim", "ARD", "UnsupportedAccess", "compute_ard"]


class UnsupportedAccess(Exception):
    """The reference falls outside the descriptor algebra.

    Raised when a stride's sign cannot be proven or a span is not an
    exact multiple of its stride; callers treat the reference (and hence
    its phase edge) conservatively as communication.
    """


@dataclass(frozen=True)
class Dim:
    """One dimension of an access descriptor.

    ``stride`` is the absolute stride (a positive expression), ``count``
    the number of points (``alpha``), ``sign`` the traversal direction
    (the λ entry), ``index`` the originating loop variable (``None``
    once merges have dissolved it), ``parallel`` whether the dimension
    comes from the phase's parallel loop, and ``dense`` whether the
    dimension's coverage is known to be contiguous at step ``stride``
    (used by the coalescing rules).
    """

    stride: Expr
    count: Expr
    sign: int = 1
    index: Optional[Symbol] = None
    parallel: bool = False
    dense: bool = False

    def __post_init__(self):
        object.__setattr__(self, "stride", as_expr(self.stride))
        object.__setattr__(self, "count", as_expr(self.count))

    @property
    def span(self) -> Expr:
        """Total extent covered along this dimension: ``(count-1)*stride``."""
        return (self.count - 1) * self.stride

    def with_count(self, count: Expr) -> "Dim":
        return replace(self, count=as_expr(count))

    def __str__(self) -> str:
        mark = "∥" if self.parallel else ""
        sign = "" if self.sign > 0 else "-"
        return f"[{mark}{sign}{self.stride} x {self.count}]"


@dataclass(frozen=True)
class ARD:
    """A single-reference access descriptor (one row of a PD).

    ``dims`` are ordered outermost loop first (the paper lists the
    parallel stride first; our phases have the parallel loop outermost so
    the orders coincide).  ``tau`` is the minimum address of the region.
    ``subscript`` retains the original φ (used by the exactness tests of
    the coalescing rules).
    """

    array: ArrayDecl
    kinds: frozenset  # frozenset[AccessKind] — R, W or both (paper's §2
    # builds descriptors ignoring access kinds; we retain the set so the
    # renderer can annotate rows, but simplifications may fuse R with W)
    dims: tuple  # tuple[Dim, ...]
    tau: Expr
    subscript: Expr
    label: str = ""
    #: minimising corner of each contributing loop variable, innermost
    #: last: ``((symbol, bound_expr), ...)``.  Retained because the exact
    #: slice-identity test of Rule-B coalescing needs per-variable corners
    #: even after merges have dissolved the variables' dimensions.
    corners: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "tau", as_expr(self.tau))
        object.__setattr__(self, "subscript", as_expr(self.subscript))

    # -- views ------------------------------------------------------------

    @property
    def alpha(self) -> tuple:
        """The α vector (counts), paper order."""
        return tuple(d.count for d in self.dims)

    @property
    def delta(self) -> tuple:
        """The δ vector (absolute strides), paper order."""
        return tuple(d.stride for d in self.dims)

    @property
    def lam(self) -> tuple:
        """The λ vector (stride signs), paper order."""
        return tuple(d.sign for d in self.dims)

    @property
    def parallel_dim(self) -> Optional[Dim]:
        for d in self.dims:
            if d.parallel:
                return d
        return None

    @property
    def sequential_dims(self) -> tuple:
        return tuple(d for d in self.dims if not d.parallel)

    def sequential_span(self) -> Expr:
        """Σ (count-1)*stride over sequential dimensions.

        For self-contained descriptors (post-coalescing) this is the
        extent of the region touched by one parallel iteration.
        """
        total: Expr = ZERO
        for d in self.sequential_dims:
            total = total + d.span
        return total

    def is_self_contained(self) -> bool:
        """True when no dim's stride/count references another dim's index.

        Only self-contained descriptors can be enumerated independently of
        the original subscript; coalescing aims to reach this state.
        """
        own = {d.index for d in self.dims if d.index is not None}
        for d in self.dims:
            free = d.stride.free_symbols() | d.count.free_symbols()
            others = own - ({d.index} if d.index is not None else set())
            if free & others:
                return False
        if self.tau.free_symbols() & own:
            return False
        return True

    def same_pattern(self, other: "ARD") -> bool:
        """Equal α and δ vectors (the paper's "similar" access pattern)."""
        return (
            len(self.dims) == len(other.dims)
            and all(
                a.stride == b.stride
                and a.count == b.count
                and a.sign == b.sign
                and a.parallel == b.parallel
                for a, b in zip(self.dims, other.dims)
            )
        )

    @property
    def kind_label(self) -> str:
        labels = sorted(k.value for k in self.kinds)
        return "/".join(labels)

    def __str__(self) -> str:
        dims = " ".join(str(d) for d in self.dims)
        return f"{self.kind_label}:{self.array.name} τ={self.tau} {dims}"


def compute_ard(access: PhaseAccess, ctx: Context) -> ARD:
    """Compute the ARD of one reference by symbolic differencing (§2).

    ``ctx`` must carry the program parameter assumptions; the loop ranges
    are taken from the access's own loop chain.
    """
    phi = access.ref.subscript
    local = ctx.copy()
    from ..symbolic import LoopVar

    for loop in access.loops:
        local.push_loop(LoopVar(loop.index, loop.lower, loop.upper))

    dims: list[Dim] = []
    corner: dict = {}
    for loop in access.loops:
        index = loop.index
        if index not in phi.free_symbols():
            if local.is_lt(loop.upper, loop.lower):
                # The subscript ignores this index, but the loop's range
                # is provably empty: the reference never executes.  A
                # count-0 dim makes every view of the row enumerate the
                # empty set — the same encoding a zero-trip loop gets
                # when its index *does* appear in the subscript.
                dims.append(
                    Dim(
                        stride=as_expr(1),
                        count=as_expr(0),
                        sign=1,
                        index=index,
                        parallel=loop.parallel,
                        dense=True,
                    )
                )
            continue
        diff = shift_difference(phi, index)
        if diff.is_zero:
            continue
        if local.is_nonneg(diff):
            sign = 1
            stride = diff
        elif local.is_nonneg(-diff):
            sign = -1
            stride = -diff
        else:
            raise UnsupportedAccess(
                f"{access.ref}: cannot determine stride sign of {diff} "
                f"for index {index}"
            )
        span = phi.subs({index: loop.upper}) - phi.subs({index: loop.lower})
        count_minus_1 = divide_exact(span, diff)
        if count_minus_1 is None:
            subst = local.pow2_substitution()
            if subst:
                count_minus_1 = divide_exact(span.subs(subst), diff.subs(subst))
        if count_minus_1 is None:
            raise UnsupportedAccess(
                f"{access.ref}: span {span} is not an exact multiple of "
                f"stride {diff} for index {index}"
            )
        count = count_minus_1 + 1
        dims.append(
            Dim(
                stride=stride,
                count=count,
                sign=sign,
                index=index,
                parallel=loop.parallel,
                dense=stride.is_one,
            )
        )
        corner[index] = loop.lower if sign > 0 else loop.upper

    # Substitute minimising corners innermost-first so that a corner that
    # itself references outer indices (e.g. J's upper bound P*2**-L - 1)
    # is resolved by the subsequent outer substitutions.
    tau = phi
    corner_order: list = []
    for loop in reversed(access.loops):
        if loop.index in corner:
            tau = tau.subs({loop.index: corner[loop.index]})
            corner_order.append((loop.index, corner[loop.index]))
    return ARD(
        array=access.ref.array,
        kinds=frozenset((access.ref.kind,)),
        dims=tuple(dims),
        tau=tau,
        subscript=phi,
        label=access.ref.label or str(access.ref),
        corners=tuple(corner_order),
    )
