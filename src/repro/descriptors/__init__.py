"""Access descriptors: ARDs, phase descriptors and their simplifications.

Pipeline (§2 of the paper)::

    reference --compute_ard--> ARD --coalesce_row--> simplified ARD
    phase     --compute_pd---> PhaseDescriptor (coalesced + row-unioned)

:mod:`repro.descriptors.region` materialises descriptor regions for
concrete parameters (the validation oracle glue).
"""

from .ard import ARD, Dim, UnsupportedAccess, compute_ard
from .pd import PhaseDescriptor, compute_pd
from .coalesce import coalesce_pd, coalesce_row
from .fingerprint import (
    access_fingerprint,
    edge_fingerprint,
    phase_array_fingerprint,
)
from .union import adjust_distance, homogenize, try_union_rows, union_rows
from .region import pd_addresses, row_addresses, row_addresses_fixed_parallel

__all__ = [
    "ARD",
    "Dim",
    "PhaseDescriptor",
    "UnsupportedAccess",
    "access_fingerprint",
    "adjust_distance",
    "coalesce_pd",
    "coalesce_row",
    "compute_ard",
    "compute_pd",
    "edge_fingerprint",
    "phase_array_fingerprint",
    "homogenize",
    "pd_addresses",
    "row_addresses",
    "row_addresses_fixed_parallel",
    "try_union_rows",
    "union_rows",
]
