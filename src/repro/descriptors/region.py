"""Concrete region enumeration from descriptors (validation oracle glue).

A *self-contained* descriptor row (post-coalescing: every stride/count is
free of other dims' loop variables) denotes the address set::

    { tau + sum_j c_j * delta_j  :  0 <= c_j <= alpha_j - 1 }

This module materialises that set for concrete parameter bindings so the
test-suite can compare descriptor semantics against brute-force loop
interpretation, and so Figure 4/8/9-style artwork can be regenerated.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Optional

import numpy as np

from .ard import ARD
from .pd import PhaseDescriptor

__all__ = ["row_addresses", "pd_addresses", "row_addresses_fixed_parallel"]


def _as_int(value: Fraction, what: str) -> int:
    if value.denominator != 1:
        raise ValueError(f"{what} is not integral: {value}")
    return int(value)


def row_addresses(
    row: ARD,
    env: Mapping[str, int],
    parallel_iteration: Optional[int] = None,
) -> np.ndarray:
    """Sorted unique addresses denoted by one descriptor row.

    With ``parallel_iteration`` given, the parallel dimension is pinned to
    that iteration (the ID view); otherwise it is enumerated like any
    other dimension (the PD view).
    """
    env = {k: Fraction(v) for k, v in env.items()}
    if not row.is_self_contained():
        raise ValueError(
            f"row {row.label!r} is not self-contained; enumerate the "
            "original reference with repro.ir.interp instead"
        )
    base = _as_int(row.tau.evalf(env), f"tau {row.tau}")
    offsets = np.zeros(1, dtype=np.int64)
    for dim in row.dims:
        stride = _as_int(dim.stride.evalf(env), f"stride {dim.stride}")
        count = _as_int(dim.count.evalf(env), f"count {dim.count}")
        if count < 1:
            raise ValueError(f"dimension count < 1: {dim}")
        if dim.parallel and parallel_iteration is not None:
            i = parallel_iteration
            if dim.sign > 0:
                offsets = offsets + i * stride
            else:
                offsets = offsets + (count - 1 - i) * stride
            continue
        steps = np.arange(count, dtype=np.int64) * stride
        offsets = (offsets[:, None] + steps[None, :]).ravel()
    return np.unique(base + offsets)


def row_addresses_fixed_parallel(
    row: ARD, env: Mapping[str, int], iteration: int
) -> np.ndarray:
    """Addresses of one parallel iteration (shorthand for the ID view)."""
    return row_addresses(row, env, parallel_iteration=iteration)


def pd_addresses(
    pd: PhaseDescriptor,
    env: Mapping[str, int],
    parallel_iteration: Optional[int] = None,
) -> np.ndarray:
    """Sorted unique addresses of a whole phase descriptor."""
    chunks = [
        row_addresses(row, env, parallel_iteration=parallel_iteration)
        for row in pd.rows
    ]
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))
