"""Concrete region enumeration from descriptors (validation oracle glue).

A *self-contained* descriptor row (post-coalescing: every stride/count is
free of other dims' loop variables) denotes the address set::

    { tau + sum_j c_j * delta_j  :  0 <= c_j <= alpha_j - 1 }

This module materialises that set for concrete parameter bindings so the
test-suite can compare descriptor semantics against brute-force loop
interpretation, and so Figure 4/8/9-style artwork can be regenerated.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Optional

import numpy as np

from ..symbolic import compile_expr
from .ard import ARD
from .pd import PhaseDescriptor

__all__ = [
    "row_addresses",
    "pd_addresses",
    "row_addresses_batch",
    "row_addresses_fixed_parallel",
]


def _as_int(value: Fraction, what: str) -> int:
    if value.denominator != 1:
        raise ValueError(f"{what} is not integral: {value}")
    return int(value)


def row_addresses(
    row: ARD,
    env: Mapping[str, int],
    parallel_iteration: Optional[int] = None,
) -> np.ndarray:
    """Sorted unique addresses denoted by one descriptor row.

    With ``parallel_iteration`` given, the parallel dimension is pinned to
    that iteration (the ID view); otherwise it is enumerated like any
    other dimension (the PD view).
    """
    env = {k: Fraction(v) for k, v in env.items()}
    if not row.is_self_contained():
        raise ValueError(
            f"row {row.label!r} is not self-contained; enumerate the "
            "original reference with repro.ir.interp instead"
        )
    base = _as_int(row.tau.evalf(env), f"tau {row.tau}")
    offsets = np.zeros(1, dtype=np.int64)
    for dim in row.dims:
        stride = _as_int(dim.stride.evalf(env), f"stride {dim.stride}")
        count = _as_int(dim.count.evalf(env), f"count {dim.count}")
        if count < 1:
            raise ValueError(f"dimension count < 1: {dim}")
        if dim.parallel and parallel_iteration is not None:
            i = parallel_iteration
            if dim.sign > 0:
                offsets = offsets + i * stride
            else:
                offsets = offsets + (count - 1 - i) * stride
            continue
        steps = np.arange(count, dtype=np.int64) * stride
        offsets = (offsets[:, None] + steps[None, :]).ravel()
    return np.unique(base + offsets)


def _ev_compiled(expr, env: Mapping, what: str) -> int:
    value = compile_expr(expr).evali(env)
    if isinstance(value, np.ndarray):  # pragma: no cover - params are scalar
        raise ValueError(f"{what} did not evaluate to a scalar")
    return value


def row_addresses_batch(
    row: ARD, env: Mapping[str, int], iterations: np.ndarray
) -> np.ndarray:
    """Address blocks of many parallel iterations in one shot.

    Returns an int64 matrix ``A`` with ``A[i]`` holding (unsorted, with
    multiplicity) every address the descriptor row assigns to parallel
    iteration ``iterations[i]`` — the per-row ``base + strides ⊗ counts``
    outer product, batched so a layout's ``owner`` can be applied to the
    whole block at once.  Scalars (tau, strides, counts) are evaluated
    through compiled closures; rows without a parallel dimension yield
    identical blocks for every iteration.
    """
    if not row.is_self_contained():
        raise ValueError(
            f"row {row.label!r} is not self-contained; enumerate the "
            "original reference with repro.ir.interp instead"
        )
    iters = np.ascontiguousarray(iterations, dtype=np.int64)
    base = np.full(iters.size, _ev_compiled(row.tau, env, "tau"),
                   dtype=np.int64)
    offsets = np.zeros(1, dtype=np.int64)
    for dim in row.dims:
        stride = _ev_compiled(dim.stride, env, f"stride {dim.stride}")
        count = _ev_compiled(dim.count, env, f"count {dim.count}")
        if count < 1:
            raise ValueError(f"dimension count < 1: {dim}")
        if dim.parallel:
            if dim.sign > 0:
                base = base + iters * stride
            else:
                base = base + (count - 1 - iters) * stride
            continue
        steps = np.arange(count, dtype=np.int64) * stride
        offsets = (offsets[:, None] + steps[None, :]).ravel()
    return base[:, None] + offsets[None, :]


def row_addresses_fixed_parallel(
    row: ARD, env: Mapping[str, int], iteration: int
) -> np.ndarray:
    """Addresses of one parallel iteration (shorthand for the ID view)."""
    return row_addresses(row, env, parallel_iteration=iteration)


def pd_addresses(
    pd: PhaseDescriptor,
    env: Mapping[str, int],
    parallel_iteration: Optional[int] = None,
) -> np.ndarray:
    """Sorted unique addresses of a whole phase descriptor."""
    chunks = [
        row_addresses(row, env, parallel_iteration=parallel_iteration)
        for row in pd.rows
    ]
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))
