"""Phase Descriptors (PDs) — the per-phase union of an array's ARDs (§2).

A PD collects the ``m`` occurrences of an array in a phase as rows.  The
paper presents a PD as ``(A, delta, Lambda, tau)`` with one *shared*
stride vector and per-occurrence rows of A; semantically the rows are
independent ARDs, so we store them as such and expose the shared-vector
presentation through :meth:`PhaseDescriptor.stride_vector` /
:meth:`PhaseDescriptor.alpha_matrix` (used by the paper-style renderer
and the Figure 3 reproduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..ir.core import AccessKind, ArrayDecl, Phase
from ..obs import obs_span
from ..symbolic import Context, Expr, smin
from .ard import ARD, Dim, UnsupportedAccess, compute_ard

__all__ = ["PhaseDescriptor", "compute_pd"]


@dataclass
class PhaseDescriptor:
    """All accesses to one array in one phase, as descriptor rows."""

    phase_name: str
    array: ArrayDecl
    rows: list  # list[ARD]

    # -- paper-style shared-vector views --------------------------------------

    def stride_vector(self) -> list:
        """The union of the rows' stride columns (paper's shared δ).

        Columns are identified by (stride, sign, parallel) in row order of
        first appearance; rows missing a column simply have no extent
        there (α treated as 1).
        """
        seen: list[tuple] = []
        for row in self.rows:
            for d in row.dims:
                key = (d.stride, d.sign, d.parallel)
                if key not in seen:
                    seen.append(key)
        return [k[0] for k in seen]

    def alpha_matrix(self) -> list:
        """Per-row α values aligned to :meth:`stride_vector` columns."""
        columns: list[tuple] = []
        for row in self.rows:
            for d in row.dims:
                key = (d.stride, d.sign, d.parallel)
                if key not in columns:
                    columns.append(key)
        matrix = []
        for row in self.rows:
            by_key = {(d.stride, d.sign, d.parallel): d.count for d in row.dims}
            matrix.append([by_key.get(key) for key in columns])
        return matrix

    @property
    def tau_vector(self) -> list:
        return [row.tau for row in self.rows]

    def tau_min(self) -> Expr:
        """The smallest base offset over all rows (symbolic min)."""
        taus = self.tau_vector
        if not taus:
            raise ValueError("empty phase descriptor")
        if len(taus) == 1:
            return taus[0]
        return smin(*taus)

    # -- access-kind summary ----------------------------------------------------

    def kinds(self) -> set:
        out: set = set()
        for row in self.rows:
            out |= row.kinds
        return out

    @property
    def reads(self) -> bool:
        return AccessKind.READ in self.kinds()

    @property
    def writes(self) -> bool:
        return AccessKind.WRITE in self.kinds()

    def is_self_contained(self) -> bool:
        return all(row.is_self_contained() for row in self.rows)

    def parallel_strides(self) -> list:
        """δ_P(j) for each row (None when a row has no parallel dim)."""
        out = []
        for row in self.rows:
            d = row.parallel_dim
            out.append(d.stride if d is not None else None)
        return out

    def __str__(self) -> str:
        lines = [f"PD[{self.phase_name}, {self.array.name}]"]
        for row in self.rows:
            lines.append("  " + str(row))
        return "\n".join(lines)


def compute_pd(
    phase: Phase,
    array: ArrayDecl,
    ctx: Context,
    simplify: bool = True,
) -> PhaseDescriptor:
    """Compute the PD of ``array`` in ``phase`` (optionally simplified).

    ``simplify=True`` runs the §2.1 pipeline: stride coalescing on every
    row followed by access-descriptor union across rows.
    """
    cache = getattr(phase, "_pd_cache", None)
    if cache is None:
        cache = {}
        setattr(phase, "_pd_cache", cache)
    key = (array.name, simplify, id(ctx))
    if key in cache:
        return cache[key]

    accesses = phase.accesses(array)
    if not accesses:
        raise KeyError(
            f"array {array.name} is not accessed in phase {phase.name}"
        )
    obs = getattr(ctx, "obs", None)
    with obs_span(
        obs, f"compute_ard:{phase.name}:{array.name}", rows=len(accesses)
    ):
        rows = [compute_ard(acc, ctx) for acc in accesses]
    pd = PhaseDescriptor(phase_name=phase.name, array=array, rows=rows)
    if simplify:
        from .coalesce import coalesce_pd
        from .union import union_rows

        phase_ctx = phase.loop_context(ctx)
        with obs_span(obs, f"coalesce_union:{phase.name}:{array.name}"):
            pd = coalesce_pd(pd, phase_ctx)
            pd = union_rows(pd, phase_ctx)
    cache[key] = pd
    return pd
