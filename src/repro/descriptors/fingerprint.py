"""Canonical fingerprints for descriptor-level analysis caching.

The locality analysis is a pure function of *structure*: what a phase
does to an array is fully determined by the access subscripts, the loop
nest around them, the array's declared extents, the access attribute and
the assumption context — never by the phase or array *names* (those only
decorate the results).  PR 1's hash-consed expressions give every
subscript and bound a stable structural key (``Expr._kc``), so a
fingerprint built from those keys is

* **stable across processes and runs** — keys are value tuples of
  strings/Fractions, no ``id()`` anywhere, safe to pickle to disk;
* **name-independent** — two structurally identical (phase, array)
  pairs (TFFT2's F3 and F6 both sweeping CFFTZWORK, say) collide on
  purpose, letting the analysis cache answer one from the other after a
  name relabel.

Loop *index* names do appear (inside subscript keys), which is exactly
right: they are bound variables of the structure, and two phases using
different index names for the same shape legitimately hash apart —
conservative, never wrong.
"""

from __future__ import annotations

from typing import Mapping, Optional

__all__ = [
    "access_fingerprint",
    "edge_fingerprint",
    "phase_array_fingerprint",
    "program_fingerprint",
]


def _loop_key(loop) -> tuple:
    return (
        loop.index.name,
        loop.lower._key(),
        loop.upper._key(),
        bool(loop.parallel),
    )


def access_fingerprint(access) -> tuple:
    """Fingerprint of one reference with its enclosing loop chain."""
    return (
        access.ref.kind.value,
        access.ref.subscript._key(),
        tuple(_loop_key(lp) for lp in access.loops),
    )


def phase_array_fingerprint(phase, array, ctx) -> tuple:
    """Fingerprint of everything Theorem 1 sees for ``(phase, array)``.

    Accesses keep program order (descriptor rows and labels are order-
    sensitive); the full loop stack of the phase is included because
    ``Phase.loop_context`` pushes every loop, not just the chains that
    enclose this array's references.
    """
    return (
        "pa1",
        phase.access_attribute(array),
        array.size._key(),
        tuple(d._key() for d in array.dims),
        tuple(access_fingerprint(a) for a in phase.accesses(array)),
        tuple(_loop_key(lp) for lp in phase.all_loops()),
        ctx._fingerprint(),
    )


def edge_fingerprint(
    phase_k,
    phase_g,
    array,
    ctx,
    H,
    env: Optional[Mapping[str, int]] = None,
    H_value: Optional[int] = None,
) -> tuple:
    """Fingerprint of one ``analyze_edge`` call.

    The concrete binding (``env``/``H_value``) is part of the key — the
    Diophantine fallback makes the verdict depend on it.
    """
    return (
        "edge1",
        phase_array_fingerprint(phase_k, array, ctx),
        phase_array_fingerprint(phase_g, array, ctx),
        H._key(),
        tuple(sorted((k, int(v)) for k, v in (env or {}).items())),
        H_value,
    )


def program_fingerprint(program, ctx=None) -> tuple:
    """Fingerprint of one whole program as the analysis pipeline sees it.

    The per-(phase, array) structural fingerprints carry the mathematics;
    the phase/array *names* are added back on top because whole-program
    consumers (the serving layer's single-flight deduplication, keyed on
    this) return documents that quote the names — two requests may only
    share a result when they would print identically, not merely when
    they are isomorphic.
    """
    ctx = ctx if ctx is not None else program.context
    parts = []
    for phase in program.phases:
        for array in sorted(phase.arrays(), key=lambda a: a.name):
            parts.append(
                (
                    phase.name,
                    array.name,
                    phase_array_fingerprint(phase, array, ctx),
                )
            )
    return ("prog1", program.name, tuple(parts))
