"""Stride coalescing — §2.1, after Paek/Hoeflinger/Padua's LMAD algebra.

Two exact rewrites are applied to each descriptor row until fixpoint:

**Rule A — contiguous merge.**  If for dims ``j`` (outer) and ``k``
(inner) of equal sign ``delta_j == delta_k * alpha_k``, the two dims
describe one contiguous sweep: they merge into a single dim with stride
``delta_k`` and count ``alpha_j * alpha_k``.  This is exact *per slice*
of the outer variables even when the strides reference outer indices —
which is how TFFT2's ``(J, K)`` pair with ``delta_J = 2**(L-1)``,
``alpha_K = 2**(L-1)`` collapses to a dense run of ``P/2`` elements.

**Rule B — invariant-slice drop.**  A dim ``j`` with loop variable ``v``
is removed when every ``v``-slice of the row describes the *same*
region.  Exact sufficient condition:

  (i)  ``v`` is free in no *other* dim's stride or count (so all slices
       have identical shape), and
  (ii) the **slice base** — the subscript φ with every other
       contributing variable substituted at its minimising corner — does
       not depend on ``v`` (so all slices have identical anchor).

After TFFT2's Rule-A merge, the ``L`` dimension passes both tests: the
slice base ``φ(J=0, K=0) = 2*P*I`` loses its ``L`` dependence, and the
dense run of ``P/2`` elements is the same for every ``L`` — giving the
paper's Figure 3(c).  A constant-stride dim like ``2*j`` in ``2*j + k``
fails (ii) (slice base ``2*j``), so nothing unsound is dropped.

Both rules are validated against brute-force address enumeration in the
test suite; anything the rules cannot prove is left untouched (the
descriptor stays correct, only less simplified).
"""

from __future__ import annotations

from typing import Optional

from ..symbolic import Context, Expr
from ..symbolic import expr as _expr_state
from .ard import ARD, Dim
from .pd import PhaseDescriptor

__all__ = ["coalesce_row", "coalesce_pd"]


def _strides_equal(a: Expr, b: Expr, ctx: Context) -> bool:
    if a == b:
        return True
    subst = ctx.pow2_substitution()
    if subst:
        return a.subs(subst) == b.subs(subst)
    return False


def _rebuild(row: ARD, dims: tuple) -> ARD:
    return ARD(
        array=row.array,
        kinds=row.kinds,
        dims=dims,
        tau=row.tau,
        subscript=row.subscript,
        label=row.label,
        corners=row.corners,
    )


def _try_merge(row: ARD, ctx: Context) -> Optional[ARD]:
    """One Rule-A step: merge the first mergeable (outer, inner) pair."""
    dims = row.dims
    for j in range(len(dims)):
        for k in range(len(dims)):
            if j == k:
                continue
            outer, inner = dims[j], dims[k]
            if outer.parallel or inner.parallel:
                # The parallel dimension is kept intact: iteration
                # descriptors need its stride untouched.
                continue
            if outer.sign != inner.sign:
                continue
            if not _strides_equal(outer.stride, inner.stride * inner.count, ctx):
                continue
            merged = Dim(
                stride=inner.stride,
                count=outer.count * inner.count,
                sign=inner.sign,
                index=None,
                parallel=False,
                dense=inner.dense or inner.stride.is_one,
            )
            new_dims = tuple(
                merged if idx == k else d
                for idx, d in enumerate(dims)
                if idx != j
            )
            return _rebuild(row, new_dims)
    return None


def _slice_base(row: ARD, skip) -> Expr:
    """φ with every corner except ``skip``'s substituted, innermost-first."""
    base = row.subscript
    for symbol, bound in row.corners:  # already innermost-first
        if symbol == skip:
            continue
        base = base.subs({symbol: bound})
    return base


def _try_drop(row: ARD, ctx: Context) -> Optional[ARD]:
    """One Rule-B step: drop the first dim whose slices provably coincide."""
    dims = row.dims
    for j, dj in enumerate(dims):
        if dj.parallel or dj.index is None:
            continue
        if dj.count.is_zero:
            # A zero-trip dim has no slices: "every slice coincides" is
            # vacuously true but dropping it would resurrect an access
            # that never executes.
            continue
        v = dj.index
        others = [d for i, d in enumerate(dims) if i != j]
        if any(
            v in (d.stride.free_symbols() | d.count.free_symbols())
            for d in others
        ):
            continue  # slice shapes differ
        base = _slice_base(row, skip=v)
        if v in base.free_symbols():
            # Retry after power-of-two rewriting (a dependence like
            # P*2**-L - 2**(p-L) only cancels once P is written as 2**p).
            subst = ctx.pow2_substitution()
            if not subst or v in base.subs(subst).free_symbols():
                continue  # slice anchors differ
        new_dims = tuple(d for i, d in enumerate(dims) if i != j)
        return _rebuild(row, new_dims)
    return None


#: Fixpoint results keyed by ``(row, ctx fingerprint)`` — the same rows
#: are re-coalesced for every (phase, array) pair during LCG
#: construction, and rows/contexts are immutable, so the rewrite is a
#: pure function of the key.
_COALESCE_CACHE: dict = {}
_COALESCE_CACHE_MAX = 4096


def coalesce_row(row: ARD, ctx: Context) -> ARD:
    """Apply Rules A and B to one row until fixpoint (memoized)."""
    if not _expr_state._MEMO_ENABLED:
        return _coalesce_row_impl(row, ctx)
    try:
        key = (row, ctx._fingerprint())
        hit = _COALESCE_CACHE.get(key)
    except TypeError:  # unhashable payload: compute uncached
        return _coalesce_row_impl(row, ctx)
    if hit is None:
        hit = _coalesce_row_impl(row, ctx)
        if len(_COALESCE_CACHE) >= _COALESCE_CACHE_MAX:
            _COALESCE_CACHE.clear()
        _COALESCE_CACHE[key] = hit
    return hit


def _coalesce_row_impl(row: ARD, ctx: Context) -> ARD:
    current = row
    changed = True
    while changed:
        changed = False
        merged = _try_merge(current, ctx)
        if merged is not None:
            current = merged
            changed = True
            continue
        dropped = _try_drop(current, ctx)
        if dropped is not None:
            current = dropped
            changed = True
    return current


def coalesce_pd(pd: PhaseDescriptor, ctx: Context) -> PhaseDescriptor:
    """Coalesce every row of a phase descriptor."""
    return PhaseDescriptor(
        phase_name=pd.phase_name,
        array=pd.array,
        rows=[coalesce_row(r, ctx) for r in pd.rows],
    )
