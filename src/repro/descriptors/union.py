"""Access-descriptor union, homogenization and offset adjustment — §2.1.

*Access descriptor union* merges two rows of one PD that have the same
access pattern (equal α and δ vectors — the paper's "similar" rows) but
shifted base offsets.  If the shift ``d = tau_2 - tau_1`` is a multiple
of some dimension's stride and does not jump past that dimension's
extent (``d <= count * stride``), the union is a single row whose count
along that dimension grows by ``d / stride`` — exactly how Figure 3(c)'s
two ``(Q, P/2)`` rows at offsets ``0`` and ``P/2`` fuse into Figure
3(d)'s single ``(Q, P)`` row.

*Descriptor homogenization* is the same operation applied to rows of
*different* phases' PDs (used when computing the common data region of a
chain), and *offset adjustment* expresses a PD's base relative to the
array-wide minimum offset via the adjust distance ``R^k = floor((tau_1^k
- tau_min) / delta_1^k)``.
"""

from __future__ import annotations

from typing import Optional

from ..ir.core import AccessKind
from ..symbolic import Context, Expr, divide_exact, floor_div
from .ard import ARD, Dim
from .pd import PhaseDescriptor

__all__ = [
    "try_union_rows",
    "union_rows",
    "homogenize",
    "adjust_distance",
]


def _combine_kinds(a: frozenset, b: frozenset) -> frozenset:
    """Rows fuse regardless of access mode (§2: descriptors are built
    "without taking into account the different kinds of accesses"); the
    union row carries both modes for rendering."""
    return a | b


def try_union_rows(a: ARD, b: ARD, ctx: Context) -> Optional[ARD]:
    """Union two same-pattern rows into one; None when not exactly fusable.

    The rows must have equal dims; the base shift must be a nonnegative
    multiple ``m`` of some dimension's stride with ``m <= count`` (an
    adjacency ``m == count`` concatenates, an overlap ``m < count``
    absorbs).  Access kinds need not match — the phase attribute is
    derived from the phase's references, not from PD rows.
    """
    kinds = _combine_kinds(a.kinds, b.kinds)
    if not a.same_pattern(b):
        return None
    low, high = a, b
    d = high.tau - low.tau
    if not ctx.is_nonneg(d):
        low, high = b, a
        d = high.tau - low.tau
        if not ctx.is_nonneg(d):
            return None  # cannot order the offsets
    if d.is_zero:
        # Identical regions: collapse, retaining both access modes.
        return ARD(
            array=low.array,
            kinds=kinds,
            dims=low.dims,
            tau=low.tau,
            subscript=low.subscript,
            label=f"{low.label} ∪ {high.label}",
            corners=low.corners,
        )
    for idx, dim in enumerate(low.dims):
        if dim.parallel:
            # Never fuse along the parallel dimension: the fused count
            # would exceed the loop trip and break per-iteration (ID)
            # semantics.  Shifted same-pattern rows are instead related
            # by the Δd storage distance (see repro.iteration.symmetry).
            continue
        steps = divide_exact(d, dim.stride)
        if steps is None:
            subst = ctx.pow2_substitution()
            if subst:
                steps = divide_exact(d.subs(subst), dim.stride.subs(subst))
        if steps is None or not ctx.is_integer_valued(steps):
            continue
        if not ctx.is_nonneg(steps):
            continue
        if not ctx.is_le(steps, dim.count):
            continue
        new_dim = dim.with_count(dim.count + steps)
        dims = tuple(
            new_dim if i == idx else dd for i, dd in enumerate(low.dims)
        )
        return ARD(
            array=low.array,
            kinds=kinds,
            dims=dims,
            tau=low.tau,
            subscript=low.subscript,
            label=f"{low.label} ∪ {high.label}",
            corners=low.corners,
        )
    return None


def union_rows(pd: PhaseDescriptor, ctx: Context) -> PhaseDescriptor:
    """Fuse every fusable pair of rows (fixpoint)."""
    rows = list(pd.rows)
    changed = True
    while changed:
        changed = False
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                fused = try_union_rows(rows[i], rows[j], ctx)
                if fused is not None:
                    rows[i] = fused
                    del rows[j]
                    changed = True
                    break
            if changed:
                break
    return PhaseDescriptor(phase_name=pd.phase_name, array=pd.array, rows=rows)


def homogenize(
    pd_k: PhaseDescriptor, pd_g: PhaseDescriptor, ctx: Context
) -> Optional[ARD]:
    """Union the regions of two phases' PDs into one row when possible.

    Used to find the common data sub-region covered by a chain of nodes;
    returns the fused row or ``None`` when the PDs are not single-row
    same-pattern shifted copies of each other.
    """
    if len(pd_k.rows) != 1 or len(pd_g.rows) != 1:
        return None
    return try_union_rows(pd_k.rows[0], pd_g.rows[0], ctx)


def adjust_distance(pd: PhaseDescriptor, tau_min: Expr) -> Expr:
    """The adjust distance ``R^k = floor((tau_1^k - tau_min) / delta_1^k)``.

    ``delta_1^k`` is the first (parallel) stride of the phase descriptor;
    the result expresses how many parallel-stride units the phase's region
    is shifted from the array-wide base position.
    """
    row = pd.rows[0]
    if not row.dims:
        return row.tau - tau_min
    delta_1 = row.dims[0].stride
    return floor_div(row.tau - tau_min, delta_1)
