"""Storage symmetry — the Δ distances of §3 (Figure 5).

Three kinds of symmetry between the sub-regions of an iteration
descriptor let several ID terms be represented (and allocated) as one:

* **Shifted storage** ``Δd``: two rows with the same access pattern whose
  regions are displaced by a constant — ``Δd = tau_b - tau_a``.
* **Reverse storage** ``Δr``: two rows traversed in opposite directions
  with respect to the parallel index (one ascending, one descending).
  Their bases mirror around a fixed point: ``base_a(i) + base_b(i)`` is
  iteration-independent, and that constant is ``Δr``.  It bounds how many
  iterations can be blocked per processor before the two ends collide —
  Table 2's ``p*H <= Δr/2`` storage constraints.
* **Overlapping storage** ``Δs``: partially overlapped sub-regions.  Two
  flavours are detected: *iteration overlap* (consecutive parallel
  iterations of one row share ``extent + 1 - delta_P`` elements — the
  stencil halo case) and *row overlap* (two same-pattern rows shifted by
  less than their extent share ``extent + 1 - shift`` elements).

The presence of ``Δs`` is exactly the trigger of Theorem 1(c) and of
Table 1's "Overl." columns; frontier communications update the
``Δs``-wide halos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..symbolic import Context, Expr
from .iterdesc import IDRow, IterationDescriptor

__all__ = [
    "StorageSymmetry",
    "shifted_distance",
    "reverse_distance",
    "iteration_overlap_distance",
    "cross_row_iteration_overlap",
    "reverse_aliasing_overlap",
    "row_overlap_distance",
    "analyze_symmetry",
]


def _same_seq_shape(a: IDRow, b: IDRow) -> bool:
    if len(a.seq_dims) != len(b.seq_dims):
        return False
    return all(
        da.stride == db.stride and da.count == db.count
        for da, db in zip(a.seq_dims, b.seq_dims)
    )


def shifted_distance(a: IDRow, b: IDRow, ctx: Context) -> Optional[Expr]:
    """``Δd``: constant displacement between two same-direction rows."""
    if a.sign_p != b.sign_p:
        return None
    if a.delta_p != b.delta_p or not _same_seq_shape(a, b):
        return None
    d = b.base0 - a.base0
    if d.is_zero:
        return None
    if ctx.is_nonneg(d):
        return d
    if ctx.is_nonneg(-d):
        return -d
    return None


def reverse_distance(a: IDRow, b: IDRow, ctx: Context) -> Optional[Expr]:
    """``Δr``: the mirror constant of an ascending/descending row pair."""
    if a.sign_p == b.sign_p:
        return None
    if a.delta_p != b.delta_p or not _same_seq_shape(a, b):
        return None
    probe = __import__("repro.symbolic", fromlist=["sym"]).sym("__rev_probe__")
    mirror = a.base(probe) + b.base(probe)
    if probe in mirror.free_symbols():
        return None
    return mirror


def iteration_overlap_distance(row: IDRow, ctx: Context) -> Optional[Expr]:
    """``Δs`` between consecutive parallel iterations of one row.

    The regions of iterations ``i`` and ``i+1`` are translates of the
    sequential lattice by ``delta_P``, so they intersect only when
    ``delta_P`` lies in the lattice's *difference set* — a dense row
    (stride 1) overlaps iff ``delta_P <= extent`` (the stencil halo),
    while an interleaved row (e.g. stride-P columns walked with
    ``delta_P = 1``) never does.  The test is sound-conservative: when
    the lattice structure cannot be analysed, overlap is *claimed*
    (which can only downgrade an edge to communication, never wrongly
    promise locality).
    """
    if row.delta_p.is_zero:
        # Every iteration touches the identical region: full overlap.
        return row.extent + 1
    dp = row.delta_p
    dims = sorted(
        row.seq_dims,
        key=lambda d: 0,  # keep declaration order; refined below
    )
    if not dims:
        # Single-point regions: translates by a positive stride are
        # disjoint.
        return None if ctx.is_positive(dp) else row.extent + 1

    # Identify the innermost (smallest-stride) dimension provably.
    inner = dims[0]
    for d in dims[1:]:
        if ctx.is_le(d.stride, inner.stride):
            inner = d
    s = inner.stride

    # Disjointness shortcut: 0 < delta_P < smallest lattice step.
    if ctx.is_positive(dp) and ctx.is_lt(dp, s):
        return None

    if len(dims) == 1:
        span = inner.span
        if ctx.is_multiple_of(dp, s):
            if ctx.is_le(dp, span):
                # shared points: count - delta_P/s
                from ..symbolic import divide_exact

                steps = divide_exact(dp, s)
                if steps is not None:
                    return inner.count - steps
                return span - dp + 1
            if ctx.is_lt(span, dp):
                return None  # provably jumps past the whole row
            # Neither dp <= span nor span < dp is provable (symbolic
            # count, e.g. a T-tap window): claiming overlap is the sound
            # side — it can only downgrade locality, never fake it.
            return row.extent + 1
        if ctx.is_lt(span, dp):
            return None
        # Not provably on/off the lattice: conservative claim.
        return row.extent + 1

    if len(dims) == 2:
        outer = dims[0] if dims[1] is inner else dims[1]
        regular = ctx.is_multiple_of(outer.stride, s) and ctx.is_le(
            inner.span, outer.stride
        )
        if regular:
            # delta_P below the outer period: intersects iff it lands
            # within the inner span (mod nothing — r = delta_P).
            if ctx.is_lt(dp, outer.stride):
                if ctx.is_multiple_of(dp, s) and ctx.is_le(dp, inner.span):
                    return row.extent - dp + 1
                if ctx.is_lt(inner.span, dp):
                    return None
            from ..symbolic import divide_exact

            q = divide_exact(dp, outer.stride)
            if q is not None and ctx.is_integer_valued(q):
                # aligned jump by whole outer periods
                if ctx.is_le(dp, outer.span):
                    return row.extent - dp + 1
                if ctx.is_lt(outer.span, dp):
                    return None
                # Unprovable either way: sound-conservative claim.
                return row.extent + 1
        # Irregular two-level lattice: conservative claim when the jump
        # is within reach of the total span.
        if ctx.is_lt(row.extent, dp):
            return None
        return row.extent + 1

    # Deeper lattices: conservative.
    if ctx.is_lt(row.extent, dp):
        return None
    return row.extent + 1


def cross_row_iteration_overlap(
    a: IDRow, b: IDRow, ctx: Context
) -> Optional[Expr]:
    """``Δs`` between row ``b`` at iteration ``i+1`` and row ``a`` at ``i``.

    The per-row check (:func:`iteration_overlap_distance`) misses halos
    carried *between* rows: a 3-D stencil's ``k+1``-plane read at
    iteration ``i`` is exactly the ``k``-plane read of iteration
    ``i+1`` — each row translates past itself (``delta_P`` = one whole
    plane) yet consecutive iterations still share two planes.  For two
    same-shape, same-direction rows the translate of ``b`` by
    ``delta_P`` overlaps ``a`` iff their displacement is within the
    common extent; when the displacement's sign or size cannot be
    proved, overlap is claimed (sound-conservative).
    """
    if a.sign_p != b.sign_p or a.delta_p != b.delta_p:
        return None
    if a.delta_p.is_zero or not _same_seq_shape(a, b):
        return None
    shift = (b.base0 + b.delta_p) - a.base0
    if shift.is_zero:
        return a.extent + 1
    for d in (shift, -shift):
        if ctx.is_nonneg(d):
            if ctx.is_le(d, a.extent):
                return a.extent - d + 1
            if ctx.is_lt(a.extent, d):
                return None
            return a.extent + 1
    # Sign unknown: conservative claim.
    return a.extent + 1


def reverse_aliasing_overlap(
    a: IDRow, b: IDRow, ctx: Context
) -> Optional[Expr]:
    """``Δs`` from a reverse pair whose address ranges intersect.

    An ascending row and a descending row walking the *same* addresses
    (``B(i)`` read, ``B(N-1-i)`` written) alias far-apart iterations
    onto one element: iteration ``i`` and iteration ``Δr - i`` touch
    the same address, so the regions of distinct iterations are not
    disjoint and Theorem 1(b) must not fire.  TFFT2's F8-style reverse
    pairs mirror into a *different* plane — provably disjoint ranges —
    and stay overlap-free.  When disjointness cannot be proved, overlap
    is claimed (sound-conservative, over-claiming is legal).
    """
    if a.sign_p == b.sign_p or a.delta_p != b.delta_p:
        return None
    if a.delta_p.is_zero:
        return None
    lo_a = a.base0
    hi_a = a.base0 + (a.count_p - 1) * a.delta_p + a.extent
    lo_b = b.base0
    hi_b = b.base0 + (b.count_p - 1) * b.delta_p + b.extent
    if ctx.is_lt(hi_a, lo_b) or ctx.is_lt(hi_b, lo_a):
        return None  # split-plane mirror: ranges provably disjoint

    if not a.seq_dims and not b.seq_dims:
        # Pointwise rows: the ascending row's address at iteration ``i``
        # meets the descending row's at iteration ``k`` iff
        # ``i + k == S``.  Only ``i == k`` meetings are harmless (same
        # processor); ``S == 0`` and the equal-count top corner are the
        # two cases where that is the *unique* solution — e.g. TFFT2's
        # F8 planes, which abut at exactly the mirror fixed point.
        from ..symbolic import divide_exact

        asc, desc = (a, b) if a.sign_p > 0 else (b, a)
        d_hi = desc.base0 + (desc.count_p - 1) * desc.delta_p
        S = divide_exact(d_hi - asc.base0, asc.delta_p)
        if S is not None:
            if ctx.is_lt(S, 0):
                return None  # iteration spaces never meet
            maxsum = (asc.count_p - 1) + (desc.count_p - 1)
            if ctx.is_lt(maxsum, S):
                return None
            if S.is_zero:
                return None  # unique meeting at i = k = 0
            if (S - maxsum).is_zero and (asc.count_p - desc.count_p).is_zero:
                return None  # unique meeting at the shared top corner
    # Affine over-cover of the union (same rationale as
    # stride_aliasing_overlap: no min/max atoms downstream).  For the
    # common same-shape mirror the two ranges coincide and the width of
    # either is exact.
    width_a = hi_a - lo_a + 1
    width_b = hi_b - lo_b + 1
    if ctx.is_le(lo_a, lo_b) and ctx.is_le(hi_b, hi_a):
        return width_a
    if ctx.is_le(lo_b, lo_a) and ctx.is_le(hi_a, hi_b):
        return width_b
    return width_a + width_b


def stride_aliasing_overlap(
    a: IDRow, b: IDRow, ctx: Context
) -> Optional[Expr]:
    """``Δs`` from two rows with *different* parallel strides whose
    address ranges intersect.

    When ``X(i)`` sits beside ``X(2*i)`` the two arithmetic progressions
    collide at iteration pairs ``i = 2*k`` arbitrarily far apart, so the
    regions of distinct iterations are not disjoint and Theorem 1(b)
    must not fire.  The same-stride machinery above never sees these
    pairs (every check demands a common ``delta_P``).  Provably disjoint
    ranges (split-plane segments) are exempt; otherwise the width of the
    combined range is claimed (sound-conservative — over-claiming can
    only downgrade locality, never fake it)."""
    if a.delta_p == b.delta_p:
        return None  # common-stride pairs have the exact Δ machinery
    if a.delta_p.is_zero or b.delta_p.is_zero:
        return None  # invariant rows already claim full overlap per-row
    lo_a = a.base0
    hi_a = a.base0 + (a.count_p - 1) * a.delta_p + a.extent
    lo_b = b.base0
    hi_b = b.base0 + (b.count_p - 1) * b.delta_p + b.extent
    if ctx.is_lt(hi_a, lo_b) or ctx.is_lt(hi_b, lo_a):
        return None  # separate planes: each address has one accessing row
    # Claim an affine over-cover of the union — min/max atoms here would
    # leak into the balanced condition's halo-slack comparisons, where
    # the context prover handles them badly.
    width_a = hi_a - lo_a + 1
    width_b = hi_b - lo_b + 1
    if ctx.is_le(lo_a, lo_b) and ctx.is_le(hi_b, hi_a):
        return width_a  # b's range sits inside a's
    if ctx.is_le(lo_b, lo_a) and ctx.is_le(hi_a, hi_b):
        return width_b
    return width_a + width_b


def row_overlap_distance(a: IDRow, b: IDRow, ctx: Context) -> Optional[Expr]:
    """``Δs`` between two same-pattern rows at the same iteration."""
    if a.sign_p != b.sign_p or a.delta_p != b.delta_p:
        return None
    if not _same_seq_shape(a, b):
        return None
    d = b.base0 - a.base0
    if ctx.is_nonneg(-d):
        d = -d
    elif not ctx.is_nonneg(d):
        return None
    overlap = a.extent - d + 1
    if d.is_zero:
        return None  # identical rows, not "partial" overlap
    if ctx.is_positive(overlap):
        return overlap
    return None


@dataclass
class StorageSymmetry:
    """All Δ distances found for one iteration descriptor."""

    shifted: list  # list[(row_a_idx, row_b_idx, Expr)]
    reverse: list  # list[(row_a_idx, row_b_idx, Expr)]
    overlap: list  # list[(row_a_idx, row_b_idx|None, Expr)] — None = self

    @property
    def has_overlap(self) -> bool:
        """∃ Δs — the predicate Theorems 1 and 2 branch on."""
        return bool(self.overlap)

    @property
    def has_reverse(self) -> bool:
        return bool(self.reverse)

    @property
    def has_shifted(self) -> bool:
        return bool(self.shifted)


def _clusters(rows_idx: list, rows: list, ctx: Context) -> list:
    """Group same-direction, same-stride rows into contiguous clusters.

    Rows whose regions abut or overlap (``tau_next <= tau_prev +
    extent_prev + 1``) form one cluster — e.g. the three halo rows of a
    Jacobi sweep.  Far-apart rows (split-plane copies like TFFT2's
    ``tau = 0`` and ``tau = PQ``) stay separate.
    """
    # Order by base offset using provable comparisons; bail to singleton
    # clusters if the order cannot be established.
    ordered = list(rows_idx)
    try:
        import functools

        def cmp(i, j):
            if rows[i].base0 == rows[j].base0:
                return 0
            if ctx.is_le(rows[i].base0, rows[j].base0):
                return -1
            if ctx.is_le(rows[j].base0, rows[i].base0):
                return 1
            raise ValueError("incomparable bases")

        ordered.sort(key=functools.cmp_to_key(cmp))
    except ValueError:
        return [[i] for i in rows_idx]
    clusters = [[ordered[0]]]
    for idx in ordered[1:]:
        prev = clusters[-1][-1]
        gap = rows[idx].base0 - (rows[prev].base0 + rows[prev].extent + 1)
        if ctx.is_nonneg(-gap):  # abutting or overlapping
            clusters[-1].append(idx)
        else:
            clusters.append([idx])
    return clusters


def analyze_symmetry(idesc: IterationDescriptor, ctx: Context) -> StorageSymmetry:
    """Detect every Δd / Δr / Δs relation of an iteration descriptor.

    Overlap (Δs) is computed per *cluster* of contiguous same-direction
    rows: a stencil's halo rows combine into one region whose extent vs.
    the parallel stride decides the overlap — three unit rows at offsets
    0, 1, 2 over a unit parallel stride yield Δs = 2 even though no row
    overlaps individually.
    """
    shifted, reverse, overlap = [], [], []
    rows = idesc.rows

    groups: dict = {}
    for i, row in enumerate(rows):
        groups.setdefault((row.sign_p, row.delta_p), []).append(i)
    for (_, delta_p), idxs in groups.items():
        for cluster in _clusters(idxs, rows, ctx):
            first = rows[cluster[0]]
            if len(cluster) == 1:
                d = iteration_overlap_distance(first, ctx)
                if d is not None:
                    overlap.append((cluster[0], None, d))
                continue
            base = first.base0
            top = base
            for idx in cluster:
                candidate = rows[idx].base0 + rows[idx].extent
                if ctx.is_le(top, candidate):
                    top = candidate
                elif not ctx.is_le(candidate, top):
                    # Unprovable order (opaque floordiv extents from
                    # floor-normalized step loops): silently skipping
                    # the candidate would under-claim Δs, a soundness
                    # bug.  Fall back to the affine over-cover — the
                    # sum of every row's reach past the cluster base
                    # (each term is nonnegative, so the sum bounds the
                    # true maximum); min/max atoms would choke the
                    # context prover downstream.
                    top = base
                    for k in cluster:
                        top = top + (
                            rows[k].base0 - base + rows[k].extent
                        )
                    break
            combined_extent = top - base
            if delta_p.is_zero:
                overlap.append((cluster[0], None, combined_extent + 1))
                continue
            d = combined_extent - delta_p + 1
            if ctx.is_positive(d) or not ctx.is_nonneg(-d):
                # Provably positive, or unprovable either way (symbolic
                # window count with no lower bound): claiming is the
                # sound side — dropping the claim would let Theorem 1(b)
                # promise locality over a real halo.
                overlap.append((cluster[0], None, d))

    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            a, b = rows[i], rows[j]
            dd = shifted_distance(a, b, ctx)
            if dd is not None:
                shifted.append((i, j, dd))
            dr = reverse_distance(a, b, ctx)
            if dr is not None:
                reverse.append((i, j, dr))
            ds = row_overlap_distance(a, b, ctx)
            if ds is not None:
                overlap.append((i, j, ds))
            dx = cross_row_iteration_overlap(a, b, ctx)
            if dx is not None:
                overlap.append((i, j, dx))
            dx = cross_row_iteration_overlap(b, a, ctx)
            if dx is not None:
                overlap.append((j, i, dx))
            da = reverse_aliasing_overlap(a, b, ctx)
            if da is not None:
                overlap.append((i, j, da))
            ds2 = stride_aliasing_overlap(a, b, ctx)
            if ds2 is not None:
                overlap.append((i, j, ds2))
    return StorageSymmetry(shifted=shifted, reverse=reverse, overlap=overlap)
