"""Iteration Descriptors (IDs) — §3, plus upper limits and memory gaps (§4.2).

The ID ``I^k(X, i)`` describes the superset of elements of ``X`` accessed
by the i-th iteration of the phase's parallel loop.  It is derived from
the PD by splitting out the parallel dimension: each row keeps its
sequential dims ``(B, delta_B)`` and gains the *extended offset*
``tau_B(j, i) = tau_j + i * delta_P(j)`` (for a descending parallel
dimension the offset walks down from the top instead).

On top of the ID this module computes the two §4.2 quantities:

* the **upper limit** ``UL(I^k(X, i))`` — the farthest memory position of
  the iteration's sub-region — and its chunk form ``UL(I, i, p)`` for
  ``p`` consecutive iterations, and
* the **memory gap** ``h^k`` — the hole between the upper limit of
  iteration ``i`` and the base of iteration ``i+1`` (clamped at zero for
  interleaved patterns whose iterations overlap or abut).

Both are what the balanced-locality condition consumes; for a phase with
an ascending single-stride structure the *balanced value*

    UL(I(0), p) + h + 1

is affine in the chunk size ``p``, which is how paper Eq. 4
(``p_2 + 2*Q*P - P = 2*P*p_3``) falls out of the framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..symbolic import (
    Context,
    Expr,
    ZERO,
    as_expr,
    smax,
    smin,
    sym,
)
from ..descriptors.ard import ARD, Dim
from ..descriptors.pd import PhaseDescriptor

__all__ = ["IDRow", "IterationDescriptor"]


@dataclass(frozen=True)
class IDRow:
    """One term of an iteration descriptor.

    ``base0`` is the region base at iteration 0; ``delta_p`` the parallel
    stride (``ZERO`` when the row does not involve the parallel index —
    every iteration then touches the same region); ``sign_p`` its
    direction; ``count_p`` the parallel trip count; ``extent`` the span
    of the sequential dims (``UL - base`` within one iteration);
    ``seq_dims`` the retained sequential dimensions.
    """

    base0: Expr
    delta_p: Expr
    sign_p: int
    count_p: Expr
    extent: Expr
    seq_dims: tuple
    label: str = ""

    def base(self, i) -> Expr:
        """The extended offset τ_B(i): first position of the sub-region."""
        i = as_expr(i)
        if self.sign_p >= 0:
            return self.base0 + i * self.delta_p
        return self.base0 + (self.count_p - 1 - i) * self.delta_p

    def upper_limit(self, i) -> Expr:
        """UL of this row at iteration ``i``."""
        return self.base(i) + self.extent


class IterationDescriptor:
    """The ID of an array in a phase: rows plus UL/gap/balanced queries."""

    def __init__(self, pd: PhaseDescriptor, ctx: Context):
        self.phase_name = pd.phase_name
        self.array = pd.array
        self.ctx = ctx
        self.rows: list = []
        for row in pd.rows:
            if not row.is_self_contained():
                raise ValueError(
                    f"PD row {row.label!r} is not self-contained; coalesce "
                    "before building iteration descriptors"
                )
            par = row.parallel_dim
            self.rows.append(
                IDRow(
                    base0=row.tau,
                    delta_p=par.stride if par is not None else ZERO,
                    sign_p=par.sign if par is not None else 1,
                    count_p=par.count if par is not None else as_expr(1),
                    extent=row.sequential_span(),
                    seq_dims=row.sequential_dims,
                    label=row.label,
                )
            )
        if not self.rows:
            raise ValueError("empty phase descriptor")

    # -- region anchors ------------------------------------------------------

    def base(self, i) -> Expr:
        """Lowest address touched by iteration ``i`` (min over rows)."""
        return smin(*[r.base(i) for r in self.rows])

    def upper_limit(self, i) -> Expr:
        """``UL(I^k(X, i))`` — max over rows of base + extent."""
        return smax(*[r.upper_limit(i) for r in self.rows])

    def upper_limit_chunk(self, i, p) -> Expr:
        """``UL(I^k(X, i), p)``: farthest position over iterations i..i+p-1.

        For ascending rows the maximum is realised at the last iteration;
        descending rows realise it at the first.  Mixed-direction IDs take
        the max over both anchors.
        """
        i, p = as_expr(i), as_expr(p)
        candidates = []
        for r in self.rows:
            at = i + p - 1 if r.sign_p >= 0 else i
            candidates.append(r.upper_limit(at))
        return smax(*candidates)

    # -- memory gap -------------------------------------------------------------

    def memory_gap(self) -> Expr:
        """``h^k``: hole between UL(I(i)) and base(I(i+1)), clamped at 0.

        For the single-row ascending case this is
        ``max(0, delta_P - extent - 1)`` — TFFT2's F3 gives ``P - ...``,
        i.e. ``h = 4`` for ``P = 4`` as in Figure 8.  The expression is
        simplified to a plain number/affine form whenever the context can
        order the operands.
        """
        i = sym("__gap_probe__")
        raw = self.base(i + 1) - self.upper_limit(i) - 1
        if i in raw.free_symbols():
            # Mixed directions: the hole is iteration-dependent; the
            # conservative gap is zero.
            return ZERO
        if self.ctx.is_nonneg(raw):
            return raw
        if self.ctx.is_nonneg(-raw):
            return ZERO
        return smax(0, raw)

    # -- balanced-value (the LHS/RHS of paper Eq. 1) ------------------------------

    def primary_row(self) -> IDRow:
        """The ascending row with the smallest base offset.

        Storage symmetry is what makes multi-term IDs tractable: the
        shifted (Δd) and reverse (Δr) companions of the primary region
        are pinned to it by constant distances, so the balanced locality
        condition is stated on the primary region alone and the Δ
        distances enter the model as *storage constraints* instead
        (Table 2's ``p*H <= Δd`` / ``p*H <= Δr/2`` rows).  This is how
        the paper derives ``2*Q*p71 = p81`` for TFFT2's F8 despite F8's
        mixed ascending/descending references.
        """
        ascending = [r for r in self.rows if r.sign_p >= 0]
        candidates = ascending or self.rows
        best = candidates[0]
        for r in candidates[1:]:
            if self.ctx.is_le(r.base0, best.base0) and r.base0 != best.base0:
                best = r
        return best

    def primary_gap(self) -> Expr:
        """Memory gap of the primary row: ``max(0, delta_P - extent - 1)``."""
        row = self.primary_row()
        if row.delta_p.is_zero:
            return ZERO
        raw = row.delta_p - row.extent - 1
        if self.ctx.is_nonneg(raw):
            return raw
        if self.ctx.is_nonneg(-raw):
            return ZERO
        return smax(0, raw)

    def balanced_value(self, p) -> Expr:
        """``UL(I(0), p) + h + 1`` as a function of the chunk size ``p``.

        Computed on the primary row (see :meth:`primary_row`); for a
        uniform ascending region this is affine in ``p`` with slope
        ``delta_P``:  ``tau + p*delta_P`` when iterations leave gaps,
        ``tau + (p-1)*delta_P + extent + 1`` when they interleave.
        """
        p = as_expr(p)
        row = self.primary_row()
        return row.base(p - 1) + row.extent + self.primary_gap() + 1

    def balanced_affine(self, p_symbol) -> Optional[tuple]:
        """Return ``(a, c)`` with balanced_value(p) == a*p + c, or None.

        ``None`` signals a non-affine balanced value (mixed directions or
        unresolved min/max), in which case the inter-phase analysis falls
        back to conservative labelling.
        """
        from ..symbolic import affine_coefficients

        # Memoized per (descriptor instance, p symbol): the linearisation
        # is a pure function of the rows and the context, both fixed for
        # the instance's lifetime.  The memo lives in __dict__, so it
        # pickles (and ships inside plan bundles) with the descriptor.
        memo = self.__dict__.setdefault("_affine_memo", {})
        if p_symbol in memo:
            return memo[p_symbol]
        value = self.balanced_value(p_symbol)
        form = affine_coefficients(value, [p_symbol])
        if not form.exact:
            result = None
        else:
            a = form.coeff(p_symbol)
            # A usable balanced value may mention only the chunk size and
            # program parameters.  A leftover *loop index* (triangular
            # bounds make the row extent iteration-dependent: ``do j =
            # 0, i``) means the value is not a function of p at all.
            loop_syms = {lv.symbol for lv in self.ctx.loops}
            leaked = (a.free_symbols() | form.constant.free_symbols()) & loop_syms
            if p_symbol in form.constant.free_symbols() or leaked:
                result = None
            else:
                result = (a, form.constant)
        memo[p_symbol] = result
        return result

    # -- misc -----------------------------------------------------------------

    @property
    def parallel_trip(self) -> Expr:
        """Trip count of the parallel loop (max over rows)."""
        return smax(*[r.count_p for r in self.rows])

    def __str__(self) -> str:
        lines = [f"ID[{self.phase_name}, {self.array.name}]"]
        for r in self.rows:
            arrow = "+" if r.sign_p >= 0 else "-"
            lines.append(
                f"  base0={r.base0} δP={arrow}{r.delta_p} "
                f"extent={r.extent} trips={r.count_p}"
            )
        return "\n".join(lines)
