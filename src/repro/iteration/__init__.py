"""Iteration descriptors, upper limits, memory gaps and storage symmetry."""

from .iterdesc import IDRow, IterationDescriptor
from .symmetry import (
    StorageSymmetry,
    analyze_symmetry,
    iteration_overlap_distance,
    reverse_distance,
    row_overlap_distance,
    shifted_distance,
)

__all__ = [
    "IDRow",
    "IterationDescriptor",
    "StorageSymmetry",
    "analyze_symmetry",
    "iteration_overlap_distance",
    "reverse_distance",
    "row_overlap_distance",
    "shifted_distance",
]
