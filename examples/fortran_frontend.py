"""Analyse a program written in the mini-Fortran dialect.

The paper's Figure 1 loop nest is transcribed verbatim (plus a TRANSC
consumer so there is an inter-phase edge to label) and pushed through
tokenizer -> parser -> lowering -> the full analysis pipeline.

Run:  python examples/fortran_frontend.py
"""

from repro import analyze
from repro.ir.parser import parse_and_lower
from repro.viz import lcg_to_dot

SOURCE = """
program tfft2_fragment
  param P = 2**p
  param Q = 2**q
  array X(2*P*Q)
  array Y(2*P*Q)

  ! Figure 1 of the paper: CFFTZWORK's butterfly nest
  phase CFFTZWORK
    doall I = 0, Q - 1
      do L = 1, p
        do J = 0, P * 2**(-L) - 1
          do K = 0, 2**(L - 1) - 1
            X(2*P*I + 2**(L-1)*J + K + P/2) = &
                f(X(2*P*I + 2**(L-1)*J + K))
          end do
        end do
      end do
      do W = 0, 2*P - 1
        Y(2*P*I + W) = g(Y(2*P*I + W))   ! private workspace
      end do
    end doall
    private Y
  end phase

  ! TRANSC: consumes the 2P-wide panels the butterflies produced
  phase TRANSC
    doall I = 0, Q - 1
      do T = 0, 2*P - 1
        Y(2*I + Q*T) = X(2*P*I + T)
      end do
    end doall
  end phase
end program
"""


def main():
    program = parse_and_lower(SOURCE)
    print(f"parsed {program}: phases "
          f"{[ph.name for ph in program.phases]}")

    env = {"P": 16, "p": 4, "Q": 16, "q": 4}
    result = analyze(program, env=env, H=4)

    print()
    print(result.lcg.render())
    print()
    edge = result.lcg.edge("X", "CFFTZWORK", "TRANSC")
    print(f"X edge CFFTZWORK -> TRANSC: {edge.label}")
    print(f"  reason: {edge.reason}")
    print()
    print("chunks:", result.plan.phase_chunks)
    print(result.report.summary())
    print()
    print(lcg_to_dot(result.lcg, "X"))


if __name__ == "__main__":
    main()
