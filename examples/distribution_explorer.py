"""Explore iteration/data distributions across processor counts.

Runs the seven-code suite for H in {2, 4, 8, 16}, comparing the
LCG-derived BLOCK-CYCLIC distribution against a naive BLOCK layout, and
prints an efficiency table in the spirit of the paper's §4.3 experiment
(">70% parallel efficiency on the Cray T3D for 64 processors").

Run:  python examples/distribution_explorer.py [--big]

``--big`` uses the larger reference sizes (minutes of runtime).
"""

import sys

from repro import analyze
from repro.codes import ALL_CODES
from repro.dsm import execute_static

SMALL = {
    "tfft2": {"P": 16, "p": 4, "Q": 16, "q": 4},
    "jacobi": {"N": 2048},
    "swim": {"M": 32, "N": 32},
    "adi": {"M": 32, "N": 32},
    "mgrid": {"N": 2048, "n": 11},
    "tomcatv": {"M": 32, "N": 32},
    "redblack": {"N": 2048},
}
BIG = {
    "tfft2": {"P": 64, "p": 6, "Q": 64, "q": 6},
    "jacobi": {"N": 65536},
    "swim": {"M": 96, "N": 96},
    "adi": {"M": 96, "N": 96},
    "mgrid": {"N": 65536, "n": 16},
    "tomcatv": {"M": 96, "N": 96},
    "redblack": {"N": 65536},
}


def main():
    sizes = BIG if "--big" in sys.argv else SMALL
    processor_counts = (2, 4, 8, 16)

    header = f"{'code':10}" + "".join(
        f"  H={h:<4} naive" for h in processor_counts
    )
    print("parallel efficiency: LCG-driven vs naive BLOCK layout")
    print(f"{'code':10}" + "".join(f"   H={h:<12}" for h in processor_counts))
    for name, (builder, _, back) in sorted(ALL_CODES.items()):
        cells = []
        for H in processor_counts:
            prog = builder()
            result = analyze(prog, env=sizes[name], H=H, back_edges=back)
            naive = execute_static(prog, sizes[name], H=H)
            cells.append(
                f"{result.report.efficiency():6.1%}/{naive.efficiency():6.1%}"
            )
        print(f"{name:10}" + "  ".join(cells))
    print()
    print("cell format: plan-efficiency / naive-efficiency")


if __name__ == "__main__":
    main()
