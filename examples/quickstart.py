"""Quickstart: analyse a program end-to-end in ~20 lines.

Builds a two-phase Jacobi relaxation with the Python DSL, runs the full
paper pipeline (descriptors -> LCG -> integer program -> DSM execution)
and prints what a parallelizing compiler would learn from it.

Run:  python examples/quickstart.py
"""

from repro import analyze
from repro.ir import ProgramBuilder

# -- 1. describe the program (a compiler front end would do this) --------
bld = ProgramBuilder("jacobi")
N = bld.param("N", minimum=8)
U = bld.array("U", N)
V = bld.array("V", N)

with bld.phase("sweep") as ph:
    with ph.doall("i", 1, N - 2) as i:
        ph.read(U, i - 1)
        ph.read(U, i)
        ph.read(U, i + 1)
        ph.write(V, i)

with bld.phase("copy_back") as ph:
    with ph.doall("i", 1, N - 2) as i:
        ph.read(V, i)
        ph.write(U, i)

program = bld.build()

# -- 2. run the pipeline on 8 simulated processors ------------------------
result = analyze(
    program,
    env={"N": 4096},
    H=8,
    back_edges=[("copy_back", "sweep")],  # the enclosing time loop
)

# -- 3. what the compiler learned ----------------------------------------
print("Locality-Communication Graph")
print(result.lcg.render())
print()
print("Constraint system (Table-2 style)")
print(result.constraints.render())
print()
print("CYCLIC(p) chunk per phase:", result.plan.phase_chunks)
print()
print("Measured on the DSM simulator:")
print(" ", result.report.summary())
for stats in result.report.phases:
    print(
        f"  {stats.phase}: local={int(stats.local.sum())} "
        f"remote={int(stats.remote.sum())} "
        f"({stats.remote_fraction:.2%} remote)"
    )
