"""Walk through every paper artifact on the TFFT2 running example.

Prints, in order: the Figure 2 ARDs, the Figure 3 descriptor
simplification, the Figure 4/8 iteration descriptors with upper limits
and memory gap, the Eq. 4–6 balanced-locality systems, the Figure 6
LCG, the Table 2 constraint system, the Eq. 7 distribution, the
measured execution, and finally the observability view of the same
run: the span tree of every pipeline stage and the cache / prover /
communication counters.

Run:  python examples/tfft2_walkthrough.py
"""

from fractions import Fraction

from repro import AnalysisOptions, analyze
from repro.codes import build_tfft2
from repro.descriptors import (
    coalesce_pd,
    compute_ard,
    compute_pd,
    union_rows,
)
from repro.iteration import IterationDescriptor
from repro.locality import balanced_condition
from repro.viz import format_ard, format_id, format_pd, lcg_to_dot

program = build_tfft2()
ctx = program.context
f3 = program.phase("F3_CFFTZWORK")
X = program.arrays["X"]

print("=" * 70)
print("Figure 2: ARDs of X in F3 (indices normalized: L' = L - 1)")
print("=" * 70)
for idx, acc in enumerate(f3.accesses("X"), 1):
    print(format_ard(compute_ard(acc, ctx), name=f"A_{idx}^3(X)"))

print()
print("=" * 70)
print("Figure 3: stride coalescing and access descriptor union")
print("=" * 70)
raw = compute_pd(f3, X, ctx, simplify=False)
phase_ctx = f3.loop_context(ctx)
print("(a) raw:")
print(format_pd(raw))
coalesced = coalesce_pd(raw, phase_ctx)
print("(c) coalesced:")
print(format_pd(coalesced))
final = union_rows(coalesced, phase_ctx)
print("(d) after union:")
print(format_pd(final))

print()
print("=" * 70)
print("Figures 4 and 8: iteration descriptors, UL and memory gap")
print("=" * 70)
idesc = IterationDescriptor(final, phase_ctx)
fig_env = {"P": 4, "p": 2, "Q": 3, "q": 0}
print(format_id(idesc, iterations=[0, 1, 2], env=fig_env))
fenv = {k: Fraction(v) for k, v in fig_env.items()}
print(f"memory gap h = {idesc.memory_gap()} = "
      f"{idesc.memory_gap().evalf(fenv)} at P=4")

print()
print("=" * 70)
print("Eq. 4-6: the balanced locality condition")
print("=" * 70)
f2 = program.phase("F2_TRANSA")
f4 = program.phase("F4_TRANSC")
id2 = IterationDescriptor(compute_pd(f2, X, ctx), f2.loop_context(ctx))
id4 = IterationDescriptor(compute_pd(f4, X, ctx), f4.loop_context(ctx))
bal_23 = balanced_condition(id2, idesc, ctx)
bal_34 = balanced_condition(idesc, id4, ctx)
env = {"P": 16, "p": 4, "Q": 16, "q": 4}
print(f"F2-F3:  {bal_23.equation_str()}")
print(f"        unbounded solution {bal_23.solve_concrete(env, 1).smallest()}"
      f" = (P, Q); inside boxes at H=4: "
      f"{bal_23.solve_concrete(env, 4).feasible}  -> edge C")
print(f"F3-F4:  {bal_34.equation_str()}")
sol = bal_34.solve_concrete(env, 4)
print(f"        {sol.count} boxed solutions (= ceil(Q/H)); "
      f"smallest {sol.smallest()}  -> edge L")

print()
print("=" * 70)
print("Figure 6 LCG, Table 2 constraints, Eq. 7 plan, measured run")
print("=" * 70)
result = analyze(program, env=env, H=4,
                 options=AnalysisOptions(trace=True, metrics=True))
print(result.lcg.render())
print()
print(result.constraints.render())
print()
print("chunks:", result.plan.phase_chunks)
if result.plan.relaxed_edges:
    print("relaxed to communication:", result.plan.relaxed_edges)
print(result.report.summary())
print()
print("Graphviz (X):")
print(lcg_to_dot(result.lcg, "X"))

print()
print("=" * 70)
print("Observability: the span tree and metrics of the run above")
print("=" * 70)
# AnalysisOptions(trace=True, metrics=True) hung a Collector on the
# run; result.trace is that collector. render() prints a flame-style
# tree — every theorem1/edge/ilp:component/comm span with its wall
# time and attributes (Theorem-1 case, ILP candidate count, put-message
# bytes per C edge). Spans under 0.1 ms are folded away here.
print(result.trace.render(min_dt=1e-4))
print()
# result.metrics is a plain sorted dict — the same counters the CLI's
# --metrics table shows. A few worth reading on TFFT2:
counters = result.metrics["counters"]
for name in (
    "analysis_cache.edge_lookups",   # one per LCG edge (14 = 7 X + 7 Y)
    "engine.deduped",                # structural twins relabelled, not recomputed
    "prover.proved",                 # monotone-bound proofs that succeeded
    "refute.refuted",                # is_nonneg queries killed by a sampled witness
    "dsm.comm.bytes",                # aggregated put traffic on the C edges
):
    print(f"  {name:32} {counters.get(name, 0)}")
# result.trace.to_json() serialises the whole tree (the CLI's --trace
# flag writes exactly this document).
