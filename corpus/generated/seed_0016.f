! env: N=128
! seed: 16
program fuzz_0016
  param N
  array A(128)
  array B(382)
  array C(255)
  array D(382)

  phase F0
    doall i = 0, N - 1
      D(i) = f(B(N - 1 - i), B(i))
      if (i <= 64) then
        C(i) = f(A(i), D(2 * i))
      end if
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      if (i >= 64) then
        D(3 * i) = f(C(i))
      end if
      B(3 * i) = f(C(2 * i), B(N - 1 - i))
    end doall
  end phase
end program
