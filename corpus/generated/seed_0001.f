! env: N=128
! seed: 1
program fuzz_0001
  param N
  array A(128)
  array B(128)
  array D(128)

  phase F0
    doall i = 0, N - 1
      if (i == 64) then
        D(N - 1 - i) = f(B(i), A(i))
      end if
    end doall
  end phase
end program
