! env: M=3,N=128
! seed: 9
program fuzz_0009
  param N
  param M
  array A(382)
  array B(385)
  array D(128)

  phase F0
    doall i = 0, N - 1
      do j = M, M - 1
        A(i + 2) = f(D(N - 1 - i))
        B(i) = f(B(M * i + j))
      end do
      A(i) = f(A(i + 1), D(i))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      if (i <= 1) then
        A(3 * i) = f(B(i), D(N - 1 - i))
      end if
      A(i) = f(A(i))
    end doall
  end phase
end program
