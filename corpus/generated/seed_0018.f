! env: M=6,q=7
! seed: 18
program fuzz_0018
  param q
  param M
  array A(129)
  array D(768)

  phase F0
    doall i = 0, 2 ** q - 1
      if (i == 3) then
        D(i) = f(D(i + 2), A(i + 1))
      end if
      do j = 0, M - 1
        D(j) = f(A(j + 1), D(M * i + j))
      end do
    end doall
  end phase
end program
