! env: M=8,N=128,q=7
! seed: 29
program fuzz_0029
  param q
  param M
  param N
  array A(134)
  array B(134)
  array C(128)
  array D(255)

  phase F0
    doall i = 0, 2 ** q - 1
      do j = 0, M - 1, 3
        A(i + j) = f(B(i + j), C(j))
      end do
      if (i <= 4) then
        D(i) = f(D(2 ** q - 1 - i), B(i))
      end if
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      if (i == 4) then
        D(i) = f(C(i))
      end if
      if (i == 4) then
        A(N - 1 - i) = f(B(i + 2), A(i))
      end if
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      D(2 * i) = f(B(N - 1 - i), C(i))
      if (i <= 4) then
        D(i) = f(A(N - 1 - i))
      end if
    end doall
  end phase
end program
