! env: M=8,N=128
! seed: 0
program fuzz_0000
  param N
  param M
  array A(128)
  array B(128)
  array C(1144)
  array D(255)

  phase F0
    doall i = 0, N - 1
      do j = 0, i
        C(2 * j) = f(C(i))
        C(M * i + j) = f(C(i))
      end do
      C(3 * i) = f(C(i), B(i))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      do j = 0, i
        D(N - 1 - i) = f(D(i + j))
      end do
      B(N - 1 - i) = f(A(i), B(i))
    end doall
  end phase
end program
