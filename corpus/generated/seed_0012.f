! env: M=6,N=128
! seed: 12
program fuzz_0012
  param N
  param M
  array A(768)
  array B(128)
  array C(128)
  array D(130)

  phase F0
    doall i = 0, N - 1
      do j = 0, M - 1
        if (j <= 3) then
          A(N - 1 - i) = f(D(i + 2))
        end if
        A(M * i + j) = f(A(M * i + j))
      end do
      C(N - 1 - i) = f(A(i), B(i))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      B(i) = f(B(N - 1 - i), A(i))
    end doall
  end phase
end program
