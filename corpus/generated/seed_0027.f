! env: M=6,N=128
! seed: 27
program fuzz_0027
  param N
  param M
  array A(128)
  array B(128)
  array C(768)
  array D(128)

  phase F0
    doall i = 0, N - 1
      B(i) = f(C(i + 2), B(i))
      A(N - 1 - i) = f(D(i))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      C(i) = f(B(i), C(i))
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      do j = M - 1, 0, -1
        A(j) = f(C(M * i + j))
      end do
    end doall
  end phase
end program
