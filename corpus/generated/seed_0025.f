! env: K=8,M=8,N=128
! seed: 25
program fuzz_0025
  param N
  param M
  param K
  array A(1023)
  array B(128)
  array C(1023)

  phase F0
    doall i = 0, N - 1
      do j = 0, M - 1, 2
        do k = 0, K - 1
          A(M * i + j) = f(C(i + j))
        end do
        C(M * i + j) = f(A(i + j), A(M * i + j))
      end do
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      if (i == 4) then
        A(i) = f(B(N - 1 - i))
      end if
      A(i) = f(A(i))
    end doall
  end phase
end program
