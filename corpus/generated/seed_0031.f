! env: M=4,N=128
! seed: 31
program fuzz_0031
  param N
  param M
  array A(128)
  array B(128)

  phase F0
    doall i = 0, N - 1
      do j = 0, M - 1
        B(i) = f(B(j))
      end do
      B(i) = f(A(i))
    end doall
  end phase
end program
