! env: K=6,M=8,N=128
! seed: 23
program fuzz_0023
  param N
  param M
  param K
  array A(128)
  array B(128)
  array C(1023)
  array D(129)

  phase F0
    doall i = 0, N - 1
      do j = 0, M - 1, 3
        do k = 0, K - 1
          if (k < i) then
            A(k) = f(D(k), D(i + 1))
          end if
          C(N - 1 - i) = f(B(N - 1 - i))
        end do
        if (j >= 3) then
          C(M * i + j) = f(D(j))
        end if
      end do
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      B(i) = f(B(i), A(i))
      C(i) = f(C(i), C(i))
    end doall
  end phase
end program
