! env: N=128
! seed: 13
program fuzz_0013
  param N
  array A(255)
  array B(128)
  array D(128)

  phase F0
    doall i = 0, N - 1
      B(i) = f(B(i))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      A(2 * i) = f(B(i), D(N - 1 - i))
    end doall
  end phase
end program
