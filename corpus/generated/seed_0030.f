! env: M=8,N=128
! seed: 30
program fuzz_0030
  param N
  param M
  array A(255)
  array B(135)
  array C(129)
  array D(1024)

  phase F0
    doall i = 0, N - 1
      B(i + 2) = f(B(i), A(i))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      do j = 0, M - 1
        A(2 * i) = f(D(M * i + j), A(N - 1 - i))
        if (i >= 4) then
          B(i + j) = f(C(i + 1), B(N - 1 - i))
        end if
      end do
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      C(i) = f(C(i), D(i))
    end doall
  end phase
end program
