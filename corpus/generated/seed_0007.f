! env: K=3,M=4,N=128,q=7
! seed: 7
program fuzz_0007
  param N
  param M
  param K
  param q
  array A(128)
  array B(128)
  array C(128)
  array D(128)

  phase F0
    doall i = 0, N - 1
      A(i) = f(C(i))
      do j = 0, i
        do k = K - 1, 0, -1
          if (j < i) then
            B(N - 1 - i) = f(D(i))
          end if
        end do
      end do
    end doall
  end phase

  phase F1
    doall i = 0, 2 ** q - 1
      if (i < 1) then
        C(i) = f(A(i))
      end if
    end doall
  end phase
end program
