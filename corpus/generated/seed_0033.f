! env: N=128,q=7
! seed: 33
program fuzz_0033
  param q
  param N
  array A(128)
  array B(128)
  array C(382)
  array D(130)

  phase F0
    doall i = 0, 2 ** q - 1
      C(3 * i) = f(D(i + 2), D(i + 1))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      C(i + 1) = f(C(i + 1))
      A(N - 1 - i) = f(B(i), C(i + 2))
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      D(i) = f(C(i))
      A(i) = f(A(i))
    end doall
  end phase
end program
