! env: N=128
! seed: 35
program fuzz_0035
  param N
  array A(128)
  array B(130)
  array C(128)
  array D(130)

  phase F0
    doall i = 0, N - 1
      B(i + 2) = f(C(N - 1 - i))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      if (i < 64) then
        D(i + 2) = f(A(i), C(i))
      end if
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      C(i) = f(A(N - 1 - i))
    end doall
  end phase
end program
