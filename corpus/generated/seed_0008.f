! env: K=4,M=3,N=128
! seed: 8
program fuzz_0008
  param N
  param M
  param K
  array A(131)
  array B(384)
  array D(128)

  phase F0
    doall i = 0, N - 1
      do j = M, M - 1
        do k = 0, K - 1
          D(3 * j) = f(B(i + j), D(j))
          if (i == 2) then
            D(2 * k) = f(A(i + j), A(3 * k))
          end if
        end do
      end do
      do j = 0, M - 1
        D(N - 1 - i) = f(B(M * i + j))
      end do
    end doall
  end phase
end program
