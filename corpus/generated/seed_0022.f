! env: K=6,M=6,q=7
! seed: 22
program fuzz_0022
  param q
  param M
  param K
  array A(768)
  array B(128)
  array D(128)

  phase F0
    doall i = 0, 2 ** q - 1
      do j = 0, M - 1
        do k = 0, K - 1
          D(2 ** q - 1 - i) = f(A(M * i + j))
        end do
      end do
      if (i <= 3) then
        B(i) = f(A(2 ** q - 1 - i))
      end if
    end doall
  end phase
end program
