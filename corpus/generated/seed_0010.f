! env: M=6,q=7
! seed: 10
program fuzz_0010
  param q
  param M
  array A(128)
  array B(382)
  array C(255)
  array D(129)

  phase F0
    doall i = 0, 2 ** q - 1
      B(3 * i) = f(A(i))
      A(i) = f(D(i))
    end doall
  end phase

  phase F1
    doall i = 0, 2 ** q - 1
      if (i >= 3) then
        D(i) = f(B(3 * i), D(i))
      end if
      do j = 0, M - 1
        B(j + 2) = f(A(2 ** q - 1 - i), C(i + j))
        B(2 * i) = f(D(i + 1))
      end do
    end doall
  end phase

  phase F2
    doall i = 0, 2 ** q - 1
      B(i) = f(B(i), B(i + 2))
      C(i) = f(C(2 * i))
    end doall
  end phase
end program
