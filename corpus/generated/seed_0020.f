! env: M=6,N=128,q=7
! seed: 20
program fuzz_0020
  param N
  param q
  param M
  array A(129)
  array B(255)
  array C(382)
  array D(129)

  phase F0
    doall i = 0, N - 1
      if (i >= 64) then
        B(i) = f(A(i), C(3 * i))
      end if
    end doall
  end phase

  phase F1
    doall i = 0, 2 ** q - 1
      C(i + 1) = f(D(i), B(i))
      do j = 0, M - 1
        if (j < i) then
          A(i + 1) = f(A(j))
        end if
        if (j == i) then
          B(2 ** q - 1 - i) = f(D(i), D(2 ** q - 1 - i))
        end if
      end do
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      D(i + 1) = f(B(2 * i))
    end doall
  end phase
end program
