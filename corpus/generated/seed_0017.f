! env: M=3,N=128,q=7
! seed: 17
program fuzz_0017
  param N
  param q
  param M
  array A(130)
  array B(128)
  array C(382)
  array D(130)

  phase F0
    doall i = 0, N - 1
      C(i) = f(A(i))
      D(i + 2) = f(A(i))
    end doall
  end phase

  phase F1
    doall i = 0, 2 ** q - 1
      if (i < 64) then
        C(3 * i) = f(D(i))
      end if
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      do j = 0, M - 1, 3
        C(M * i + j) = f(D(i))
      end do
      B(i) = f(A(i + 2), B(N - 1 - i))
    end doall
  end phase
end program
