! env: K=8,M=4,N=128,q=7
! seed: 5
program fuzz_0005
  param N
  param q
  param M
  param K
  array A(513)
  array B(131)
  array C(129)
  array D(129)

  phase F0
    doall i = 0, N - 1
      A(i) = f(B(N - 1 - i), A(i))
      if (i == 64) then
        A(i) = f(A(N - 1 - i))
      end if
    end doall
  end phase

  phase F1
    doall i = 0, 2 ** q - 1
      do j = M - 1, 0, -1
        do k = 0, K - 1
          if (i <= i) then
            B(i + j) = f(C(i + 1))
          end if
        end do
      end do
      do j = M, M - 1
        if (j <= i) then
          C(j) = f(A(M * i + j), C(j))
        end if
        if (j >= i) then
          B(2 * j) = f(C(j))
        end if
      end do
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      D(i + 1) = f(A(N - 1 - i), B(i))
    end doall
  end phase
end program
