! env: K=8,M=8,N=128
! seed: 28
program fuzz_0028
  param N
  param M
  param K
  array A(1025)
  array B(1025)
  array D(128)

  phase F0
    doall i = 0, N - 1
      do j = M, M - 1
        do k = 0, K - 1
          B(M * i + j) = f(B(j))
        end do
        do k = 0, K - 1
          B(k) = f(B(N - 1 - i), D(i))
          if (j >= 4) then
            A(M * i + j) = f(A(M * i + j), D(i))
          end if
        end do
      end do
    end doall
  end phase
end program
