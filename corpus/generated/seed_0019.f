! env: M=4,N=128,q=7
! seed: 19
program fuzz_0019
  param q
  param N
  param M
  array A(512)
  array B(128)
  array C(128)
  array D(255)

  phase F0
    doall i = 0, 2 ** q - 1
      D(i + 1) = f(A(i + 2), C(i))
    end doall
  end phase

  phase F1
    doall i = 0, 2 ** q - 1
      A(i) = f(A(i))
      D(i) = f(A(2 * i))
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      D(2 * i) = f(B(i), A(i))
      do j = 0, M - 1
        A(M * i + j) = f(A(2 * j), D(i + j))
      end do
    end doall
  end phase
end program
