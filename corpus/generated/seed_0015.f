! env: M=3,q=7
! seed: 15
program fuzz_0015
  param q
  param M
  array B(130)
  array D(128)

  phase F0
    doall i = 0, 2 ** q - 1
      do j = 0, M - 1
        B(i + j) = f(B(j), D(2 ** q - 1 - i))
      end do
    end doall
  end phase
end program
