! env: K=3,M=3,N=128
! seed: 11
program fuzz_0011
  param N
  param M
  param K
  array A(255)
  array B(385)
  array C(255)
  array D(255)

  phase F0
    doall i = 0, N - 1
      B(i) = f(A(2 * i))
      do j = M, M - 1
        B(M * i + j) = f(A(i))
        do k = 0, K - 1
          if (k <= 1) then
            C(2 * i) = f(C(2 * k), C(i + 2))
          end if
          if (k == 1) then
            A(i + j) = f(D(i), A(i))
          end if
        end do
      end do
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      D(2 * i) = f(C(i), C(i))
    end doall
  end phase
end program
