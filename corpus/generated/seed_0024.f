! env: M=4,N=128
! seed: 24
program fuzz_0024
  param N
  param M
  array A(128)
  array B(129)
  array C(382)
  array D(128)

  phase F0
    doall i = 0, N - 1
      do j = 0, M - 1
        A(N - 1 - i) = f(C(N - 1 - i))
      end do
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      A(i) = f(D(N - 1 - i), C(3 * i))
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      C(i) = f(B(i + 1))
    end doall
  end phase
end program
