! env: N=128,q=7
! seed: 34
program fuzz_0034
  param N
  param q
  array A(255)
  array B(128)
  array C(382)
  array D(128)

  phase F0
    doall i = 0, N - 1
      A(2 * i) = f(C(i + 1), A(i + 1))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      C(i + 2) = f(C(i + 2))
    end doall
  end phase

  phase F2
    doall i = 0, 2 ** q - 1
      B(i) = f(D(i), A(i))
      A(i) = f(C(3 * i), B(i))
    end doall
  end phase
end program
