! env: q=7
! seed: 2
program fuzz_0002
  param q
  array B(128)
  array C(129)
  array D(130)

  phase F0
    doall i = 0, 2 ** q - 1
      C(i + 1) = f(D(2 ** q - 1 - i))
      if (i == 3) then
        C(i) = f(D(i + 2), B(i))
      end if
    end doall
  end phase
end program
