! env: N=128
! seed: 4
program fuzz_0004
  param N
  array A(128)
  array C(129)

  phase F0
    doall i = 0, N - 1
      A(i) = f(C(i), A(i))
      if (i < 64) then
        C(i) = f(C(i), C(i + 1))
      end if
    end doall
  end phase
end program
