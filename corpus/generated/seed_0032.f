! env: N=128
! seed: 32
program fuzz_0032
  param N
  array A(129)

  phase F0
    doall i = 0, N - 1
      if (i == 64) then
        A(N - 1 - i) = f(A(i + 1))
      end if
    end doall
  end phase
end program
