! env: N=128
! seed: 14
program fuzz_0014
  param N
  array A(130)
  array C(382)

  phase F0
    doall i = 0, N - 1
      if (i >= 64) then
        A(N - 1 - i) = f(C(3 * i), A(i + 2))
      end if
    end doall
  end phase
end program
