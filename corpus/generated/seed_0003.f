! env: N=128
! seed: 3
program fuzz_0003
  param N
  array A(128)
  array B(128)
  array C(128)

  phase F0
    doall i = 0, N - 1
      if (i < 64) then
        A(i) = f(C(i), B(i))
      end if
    end doall
  end phase
end program
