! env: M=3,N=128
! seed: 6
program fuzz_0006
  param N
  param M
  array A(128)
  array B(128)
  array C(130)
  array D(130)

  phase F0
    doall i = 0, N - 1
      A(i) = f(C(i + 2), D(i))
      do j = M - 1, 0, -1
        C(N - 1 - i) = f(D(i + 2))
      end do
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      A(i) = f(C(i))
      B(i) = f(D(i), B(i))
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      B(i) = f(C(i + 1), B(i))
    end doall
  end phase
end program
