! env: N=128
! seed: 21
program fuzz_0021
  param N
  array A(128)
  array B(128)
  array D(128)

  phase F0
    doall i = 0, N - 1
      D(i) = f(D(i))
      B(i) = f(A(i))
    end doall
  end phase
end program
