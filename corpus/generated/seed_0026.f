! env: M=8,N=128
! seed: 26
program fuzz_0026
  param N
  param M
  array A(1024)
  array B(1024)
  array D(255)

  phase F0
    doall i = 0, N - 1
      A(i) = f(B(N - 1 - i))
    end doall
  end phase

  phase F1
    doall i = 0, N - 1
      D(N - 1 - i) = f(A(N - 1 - i))
    end doall
  end phase

  phase F2
    doall i = 0, N - 1
      do j = 0, M - 1
        if (i >= i) then
          A(M * i + j) = f(A(3 * j))
        end if
        D(2 * i) = f(B(M * i + j), D(i + j))
      end do
    end doall
  end phase
end program
